"""Tests for the telemetry layer: spans, metrics, timelines, exporters."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_SECONDS_EDGES,
    Histogram,
    MetricsRegistry,
    Telemetry,
    UtilizationTimeline,
    chrome_trace,
    chrome_trace_json,
    summary,
    to_jsonl,
)
from repro.telemetry.scenarios import SCENARIOS, run_scenario

from tests.hypothesis_settings import SLOW_SETTINGS, STANDARD_SETTINGS


class TestSpans:
    def test_begin_end_carries_duration(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=1.0)
        tel.end(span, time=3.5)
        assert span.duration == 2.5

    def test_unfinished_span_has_no_duration(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=1.0)
        assert not span.finished
        with pytest.raises(ConfigurationError):
            _ = span.duration

    def test_double_end_rejected(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=1.0)
        tel.end(span, time=2.0)
        with pytest.raises(ConfigurationError):
            tel.end(span, time=3.0)

    def test_end_before_start_rejected(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=5.0)
        with pytest.raises(ConfigurationError):
            tel.end(span, time=4.0)

    def test_nesting_via_explicit_parent(self):
        tel = Telemetry()
        outer = tel.begin("outer", "task", time=0.0)
        inner = tel.begin("inner", "task", time=1.0, parent=outer)
        tel.end(inner, time=2.0)
        tel.end(outer, time=3.0)
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_span_ids_sequential_in_begin_order(self):
        tel = Telemetry()
        spans = [tel.begin(f"s{i}", "task", time=float(i)) for i in range(5)]
        assert [s.span_id for s in spans] == [1, 2, 3, 4, 5]

    def test_context_manager_closes_on_exception(self):
        tel = Telemetry()
        with pytest.raises(RuntimeError):
            with tel.span("work", "task", time=0.0):
                raise RuntimeError("boom")
        (span,) = tel.finished_spans()
        assert span.finished

    def test_bound_clock_supplies_times(self):
        tel = Telemetry()
        now = {"t": 2.0}
        tel.bind_clock(lambda: now["t"])
        span = tel.begin("work", "task")
        now["t"] = 7.0
        tel.end(span)
        assert span.start == 2.0 and span.duration == 5.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0):  # both land in (-inf, 1.0]
            h.record(v)
        h.record(1.5)  # (1.0, 2.0]
        h.record(2.0)  # still (1.0, 2.0] — edge is inclusive
        h.record(3.0)  # (2.0, 4.0]
        h.record(9.0)  # overflow
        assert h.counts == [2, 2, 1, 1]

    def test_bucket_bounds(self):
        h = Histogram("h", edges=(1.0, 2.0))
        assert h.bucket_bounds(0) == (float("-inf"), 1.0)
        assert h.bucket_bounds(1) == (1.0, 2.0)
        assert h.bucket_bounds(2) == (2.0, float("inf"))

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(2.0, 1.0))

    def test_summary_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.n == 3 and h.total == 6.0
        assert h.min_value == 1.0 and h.max_value == 3.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1,
                    max_size=50))
    @STANDARD_SETTINGS
    def test_counts_partition_the_samples(self, values):
        h = Histogram("h", edges=DEFAULT_SECONDS_EDGES)
        for v in values:
            h.record(v)
        assert sum(h.counts) == len(values) == h.n


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("c") is m.counter("c")

    def test_type_mismatch_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ConfigurationError):
            m.gauge("x")

    def test_histogram_edge_mismatch_rejected(self):
        m = MetricsRegistry()
        m.histogram("h", edges=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            m.histogram("h", edges=(1.0, 3.0))

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            m.counter("c").inc(-1.0)

    def test_iteration_sorted_by_name(self):
        m = MetricsRegistry()
        m.counter("zeta")
        m.gauge("alpha")
        assert list(m) == ["alpha", "zeta"]


class TestUtilizationTimeline:
    def test_busy_time_step_integral(self):
        tl = UtilizationTimeline(
            resource="r", capacity=4,
            times=(0.0, 1.0, 3.0), values=(2.0, 4.0, 0.0),
        )
        # 2 nodes for 1 s, then 4 nodes for 2 s; last value has no width
        assert tl.busy_time() == 10.0
        assert tl.utilization() == 10.0 / (4 * 3.0)
        assert tl.peak() == 4.0

    def test_value_at_is_right_continuous(self):
        tl = UtilizationTimeline(
            resource="r", capacity=2,
            times=(0.0, 2.0), values=(1.0, 2.0),
        )
        assert tl.value_at(0.0) == 1.0
        assert tl.value_at(1.999) == 1.0
        assert tl.value_at(2.0) == 2.0
        assert tl.value_at(-1.0) == 0.0

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=1, max_size=30,
        ),
    )
    @STANDARD_SETTINGS
    def test_invariants_hold_for_any_sample_stream(self, capacity, raw):
        times = sorted(t for t, _ in raw)
        values = [float(min(v, capacity)) for _, v in raw]
        tl = UtilizationTimeline(
            resource="r", capacity=capacity,
            times=tuple(times), values=tuple(values),
        )
        assert 0.0 <= tl.utilization() <= 1.0
        assert 0.0 <= tl.busy_time() <= capacity * tl.span + 1e-9
        assert tl.peak() <= capacity


class TestChromeExport:
    def test_export_shape(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=0.0)
        tel.instant("tick", "mark", time=0.5)
        tel.end(span, time=1.0)
        tel.sample("pool", 2.0, capacity=4, time=0.25)
        trace = chrome_trace(tel)
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "i", "C", "M"} <= phases
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert complete["dur"] == pytest.approx(1e6)  # 1 s in microseconds

    def test_unfinished_spans_skipped(self):
        tel = Telemetry()
        tel.begin("open", "task", time=0.0)
        assert not [
            e for e in chrome_trace(tel)["traceEvents"] if e["ph"] == "X"
        ]

    def test_track_metadata_first_appearance_order(self):
        tel = Telemetry()
        a = tel.begin("a", "task", facility="f", track="beta", time=0.0)
        b = tel.begin("b", "task", facility="f", track="alpha", time=0.0)
        tel.end(a, time=1.0)
        tel.end(b, time=1.0)
        meta = [
            e for e in chrome_trace(tel)["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert [m["args"]["name"] for m in meta] == ["beta", "alpha"]
        assert [m["tid"] for m in meta] == [1, 2]

    def test_jsonl_roundtrips(self):
        tel = Telemetry()
        span = tel.begin("work", "task", time=0.0)
        tel.end(span, time=1.0)
        lines = to_jsonl(tel).splitlines()
        assert lines
        for line in lines:
            json.loads(line)


class TestScenarioDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_byte_identical_chrome_export(self, name):
        a = chrome_trace_json(run_scenario(name, seed=3).telemetry)
        b = chrome_trace_json(run_scenario(name, seed=3).telemetry)
        assert a == b

    def test_dag_scenario_has_faults_and_node_tracks(self):
        tel = run_scenario("dag", seed=0).telemetry
        assert any(e.category == "fault" for e in tel.instants)
        trace = chrome_trace(tel)
        tracks = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(t.startswith("node ") for t in tracks)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_dag_metrics_match_resilience_report(self):
        scenario = run_scenario("dag", seed=0)
        m = scenario.telemetry.metrics
        results = scenario.results
        busy = m.counter("dag.busy_node_seconds").value
        useful = m.counter("dag.useful_node_seconds").value
        lost = m.counter("dag.lost_node_seconds").value
        assert useful / busy == results["report_goodput_fraction"]
        assert lost / 3600.0 == results["report_lost_node_hours"]
        assert results["goodput_fraction"] == results["report_goodput_fraction"]
        assert results["lost_node_hours"] == results["report_lost_node_hours"]

    def test_summary_mentions_each_facility(self):
        tel = run_scenario("dag", seed=0).telemetry
        text = summary(tel)
        assert "Summit" in text and "utilization" in text


class TestInstrumentationProperties:
    @given(st.integers(min_value=0, max_value=40))
    @SLOW_SETTINGS
    def test_dag_metric_totals_equal_sum_over_attempt_spans(self, seed):
        """The busy/useful counters equal the sums of the per-attempt span
        attributes — metrics and spans are two views of one accounting."""
        tel = run_scenario("dag", seed=seed).telemetry
        attempts = tel.finished_spans(category="task")
        busy = sum(s.attrs["wall"] * s.attrs["nodes"] for s in attempts)
        useful = sum(s.attrs["gained"] * s.attrs["nodes"] for s in attempts)
        m = tel.metrics
        assert busy == pytest.approx(
            m.counter("dag.busy_node_seconds").value, rel=1e-12
        )
        assert useful == pytest.approx(
            m.counter("dag.useful_node_seconds").value, rel=1e-12
        )
        # attempt wall-clock also matches the span durations themselves
        for s in attempts:
            assert s.duration == pytest.approx(s.attrs["wall"], abs=1e-9)

    @given(st.integers(min_value=0, max_value=40))
    @SLOW_SETTINGS
    def test_dag_utilization_invariants(self, seed):
        tel = run_scenario("dag", seed=seed).telemetry
        assert tel.sampled_resources()
        for resource in tel.sampled_resources():
            tl = tel.utilization(resource)
            assert 0.0 <= tl.utilization() <= 1.0
            assert tl.busy_time() <= tl.capacity * tl.span + 1e-9
            assert tl.peak() <= tl.capacity

    def test_telemetry_off_results_identical(self):
        """The instrumented executor returns the exact numbers of the
        uninstrumented one — telemetry is observation, not perturbation."""
        from repro.resilience.retry import RetryPolicy
        from repro.workflows.dag import TaskGraph
        from repro.workflows.facility import Facility

        def build():
            g = TaskGraph({"f": Facility(name="F", nodes=4)})
            g.add_task("a", 100.0, "f", nodes=2, failure_rate=1 / 80.0,
                       checkpoint_interval=25.0, checkpoint_write_time=2.0)
            g.add_task("b", 50.0, "f", nodes=2, deps=["a"])
            return g

        bare = build().execute(retry=RetryPolicy(max_attempts=10), seed=7)
        inst = build().execute(
            retry=RetryPolicy(max_attempts=10), seed=7, telemetry=Telemetry()
        )
        assert bare.makespan == inst.makespan
        assert bare.start_times == inst.start_times
        assert bare.end_times == inst.end_times
        assert bare.n_failures == inst.n_failures
        assert bare.busy_node_seconds == inst.busy_node_seconds


class TestStreamingExports:
    def test_write_jsonl_byte_identical_to_to_jsonl(self, tmp_path):
        from repro.telemetry import write_jsonl

        tel = run_scenario("dag", seed=0).telemetry
        path = tmp_path / "trace.jsonl"
        write_jsonl(tel, str(path))
        assert path.read_text() == to_jsonl(tel) + "\n"

    def test_render_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("service.leases").inc(3)
        registry.gauge("queue-depth").set(2.5)
        registry.histogram("op.seconds", (0.1, 1.0)).record(0.5)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE op_seconds histogram" in lines
        assert 'op_seconds_bucket{le="0.1"} 0' in lines
        assert 'op_seconds_bucket{le="1.0"} 1' in lines
        assert 'op_seconds_bucket{le="+Inf"} 1' in lines
        assert "op_seconds_count 1" in lines
        assert "op_seconds_sum 0.5" in lines
        assert "queue_depth 2.5" in lines
        assert "service_leases_total 3.0" in lines
        assert text.endswith("\n")

    def test_render_prometheus_is_deterministic(self):
        tel = run_scenario("dag", seed=0).telemetry
        again = run_scenario("dag", seed=0).telemetry
        assert tel.metrics.render_prometheus() == \
            again.metrics.render_prometheus()
