"""High-level facade: the three entry points most users want."""

from repro.core.api import ScalingStudyRunner, SummitSimulator, UsageSurvey

__all__ = ["ScalingStudyRunner", "SummitSimulator", "UsageSurvey"]
