"""The paper-parity conformance suite: registry, differentials, invariants.

Every expectation in :mod:`repro.verify.expectations` runs as its own
parametrized tier-1 test (failures name the paper citation and the
measured-vs-paper delta), the cross-path differential runners and
structural auditors run over the session-scoped report fixture, and the
``repro verify`` CLI contract — deterministic byte-identical JSON — is
pinned here too.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.verify import (
    BENCH_BINDINGS,
    VerifyContext,
    build_registry,
    expectation_sections,
    get_expectation,
)
from repro.verify.report import run_conformance

REGISTRY_KEYS = [e.key for e in build_registry()]


# ---------------------------------------------------------------------------
# Registry structure
# ---------------------------------------------------------------------------


def test_registry_covers_every_paper_section():
    assert expectation_sections() == (
        "table1", "table2", "table3",
        "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
        "section4b", "section5", "section6b",
    )


def test_registry_keys_unique_and_complete():
    registry = build_registry()
    assert len(registry) >= 80
    assert len({e.key for e in registry}) == len(registry)
    for e in registry:
        assert e.description and e.paper, e.key
        assert e.provenance in ("stated", "estimated", "structural"), e.key


def test_every_section4b_app_has_registry_entries():
    keys = set(REGISTRY_KEYS)
    for app in ("kurth", "yang", "laanait", "khan", "blanchard"):
        assert any(k.startswith(f"section4b.{app}.") for k in keys), app


def test_bench_bindings_reference_real_expectations():
    for name, bindings in BENCH_BINDINGS.items():
        assert bindings, name
        for registry_key in bindings.values():
            get_expectation(registry_key)  # raises on unknown key


def test_get_expectation_rejects_unknown_key():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        get_expectation("section9.nonexistent")


# ---------------------------------------------------------------------------
# The registry itself, one test per paper-stated quantity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("key", REGISTRY_KEYS)
def test_expectation(key, verify_context):
    result = get_expectation(key).check(verify_context)
    assert result.passed, result.message()


# ---------------------------------------------------------------------------
# Section IV-B goldens: calibration drift fails loudly
# ---------------------------------------------------------------------------

#: Exact values the current calibration produces. Tolerance is loose enough
#: to survive benign float-level refactors, tight enough that any real
#: recalibration (changed plan, changed kernel) trips the pin — the paper
#: tolerance alone (2-3 %) would let silent drift accumulate.
SECTION4B_GOLDENS = {
    "kurth": {"measured_flops": 1.130174481973284e18,
              "measured_efficiency": 0.9072589364166656},
    "yang": {"measured_flops": 1.2119694664127747e18,
             "measured_efficiency": 0.9321996411645688},
    "laanait": {"measured_flops": 2.1499761136734195e18,
                "measured_efficiency": 0.9700727715638544},
    "khan": {"measured_flops": 2.7326940944901436e16,
             "measured_efficiency": 0.8131242957274286},
    "blanchard": {"measured_flops": 6.017270674912498e17,
                  "measured_efficiency": 0.6984096221204704},
}


@pytest.mark.parametrize("app_key", sorted(SECTION4B_GOLDENS))
def test_section4b_goldens(app_key, verify_context):
    result = verify_context.app_result(app_key)
    for field, golden in SECTION4B_GOLDENS[app_key].items():
        measured = result[field]
        delta = (measured - golden) / golden
        assert measured == pytest.approx(golden, rel=1e-09), (
            f"{app_key}.{field} drifted from its calibrated value: "
            f"pinned {golden!r}, measured {measured!r} "
            f"(rel. delta {delta:+.3e}). If this recalibration is "
            f"intentional, re-check the paper expectation "
            f"(section4b.{app_key}.*) still passes and update the golden."
        )


def test_section4b_golden_blanchard_no_io(verify_context):
    measured = verify_context.blanchard_no_io["measured_efficiency"]
    assert measured == pytest.approx(0.8469919688613947, rel=1e-09), (
        f"blanchard no-I/O efficiency drifted: measured {measured!r} "
        "(paper: 83.3% without I/O costs, Sec. IV-B.5)"
    )


def test_section4b_golden_global_batches(verify_context):
    assert verify_context.app_global_batch("laanait") == 27600
    assert verify_context.app_global_batch("blanchard") == 5806080


# ---------------------------------------------------------------------------
# Differential runners + invariant auditors (session report fixture)
# ---------------------------------------------------------------------------


def test_differentials_all_pass(conformance_report):
    failed = [r.message() for r in conformance_report.differentials
              if not r.passed]
    assert len(conformance_report.differentials) >= 6
    assert not failed, "\n".join(failed)


def test_invariants_all_pass(conformance_report):
    failed = [r.message() for r in conformance_report.invariants
              if not r.passed]
    assert len(conformance_report.invariants) >= 7
    assert not failed, "\n".join(failed)


def test_report_passes_and_serializes(conformance_report):
    assert conformance_report.passed
    payload = json.loads(conformance_report.to_json())
    assert payload["passed"] is True
    assert payload["schema"] == 1
    assert payload["counts"]["expectations"]["failed"] == 0
    assert "FAIL" not in conformance_report.format().splitlines()[-1]


def test_report_byte_determinism():
    """Same seed -> byte-identical JSON (the CI artifact contract)."""
    sections = ("table1", "table2", "table3", "fig3")
    first = run_conformance(seed=0, sections=sections)
    second = run_conformance(seed=0, sections=sections)
    assert first.to_json() == second.to_json()
    assert json.loads(first.to_json())["sections"] == list(sections)


def test_run_conformance_rejects_unknown_section():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        run_conformance(sections=("fig1", "nonexistent"))


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_verify_json(capsys, tmp_path):
    from repro.cli import main

    out_path = tmp_path / "conformance.json"
    code = main([
        "verify", "--sections", "table1,table2,fig3",
        "--json", "--out", str(out_path),
    ])
    assert code == 0
    payload = json.loads(out_path.read_text())
    assert payload["passed"] is True
    assert capsys.readouterr().out.strip().endswith(str(out_path))


def test_cli_verify_list(capsys):
    from repro.cli import main

    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    assert "section4b.kurth.peak_flops" in out
    assert "Sec. VI-B" in out


# ---------------------------------------------------------------------------
# Benchmark-record verdict embedding (satellite)
# ---------------------------------------------------------------------------


def _load_record_module():
    path = Path(__file__).resolve().parent.parent / "benchmarks" / "_record.py"
    spec = importlib.util.spec_from_file_location("bench_record", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_bench_record_embeds_conformance_verdicts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    record = _load_record_module().record

    path = record(
        "scaling_kurth",
        {"peak_flops": 1.13e18, "efficiency": 0.907, "nodes": 4560},
    )
    payload = json.loads(path.read_text())
    verdicts = payload["conformance"]
    assert verdicts["peak_flops"]["expectation"] == "section4b.kurth.peak_flops"
    assert verdicts["peak_flops"]["passed"] is True
    assert verdicts["peak_flops"]["rel_error"] == pytest.approx(0.0)
    assert verdicts["efficiency"]["paper"] == "Sec. IV-B.1"
    assert "nodes" not in verdicts  # unbound scalars carry no verdict


def test_bench_record_flags_drifted_value(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    record = _load_record_module().record

    path = record("scaling_kurth", {"peak_flops": 2.0e18})
    verdict = json.loads(path.read_text())["conformance"]["peak_flops"]
    assert verdict["passed"] is False
    assert verdict["rel_error"] > 0.5


def test_bench_record_unmapped_benchmark_has_no_verdicts(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    record = _load_record_module().record

    path = record("cost_sweep", {"speedup": 1600.0})
    assert json.loads(path.read_text())["conformance"] is None


# ---------------------------------------------------------------------------
# Expectation semantics
# ---------------------------------------------------------------------------


def test_expectation_comparison_modes():
    from repro.verify import Expectation

    approx = Expectation(
        key="t.approx", section="t", description="d", paper="p",
        provenance="stated", expected=100.0, rel_tol=0.05,
        measure=lambda ctx: None,
    )
    assert approx.compare(104.0).passed
    assert not approx.compare(106.0).passed
    assert approx.compare(104.0).rel_error == pytest.approx(0.04)

    bound = Expectation(
        key="t.bound", section="t", description="d", paper="p",
        provenance="stated", expected=10.0, cmp="lt",
        measure=lambda ctx: None,
    )
    assert bound.compare(9.9).passed
    assert not bound.compare(10.0).passed

    exact = Expectation(
        key="t.exact", section="t", description="d", paper="p",
        provenance="stated", expected=False, cmp="exact",
        measure=lambda ctx: None,
    )
    assert exact.compare(False).passed
    assert not exact.compare(True).passed


def test_expectation_rejects_bad_config():
    from repro.errors import ConfigurationError
    from repro.verify import Expectation

    with pytest.raises(ConfigurationError):
        Expectation(
            key="t.bad", section="t", description="d", paper="p",
            provenance="stated", expected=1.0, cmp="nearly",
            measure=lambda ctx: None,
        )
    with pytest.raises(ConfigurationError):
        Expectation(  # approx without any tolerance
            key="t.bad2", section="t", description="d", paper="p",
            provenance="stated", expected=1.0, measure=lambda ctx: None,
        )


def test_verify_context_caches_measurements():
    ctx = VerifyContext(seed=0)
    assert ctx.app_result("khan") is ctx.app_result("khan")
    assert ctx.overall_usage is ctx.overall_usage
