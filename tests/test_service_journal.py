"""Tests for the write-ahead journal: durability, rotation, replay tolerance."""

import json
import zlib

import pytest

from repro.errors import ConfigurationError, JournalCorrupt
from repro.service.journal import (
    Journal,
    read_journal,
    segment_paths,
)
from repro.telemetry import MetricsRegistry


def _write(tmp_path, records, **kwargs):
    journal = Journal(tmp_path, **kwargs)
    for type_, payload in records:
        journal.append_commit(type_, **payload)
    journal.close()
    return journal


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        _write(tmp_path, [("ingest", {"jobs": ["a"]}),
                          ("lease", {"session": "s", "jobs": ["a"]})])
        replay = read_journal(tmp_path)
        assert [r["type"] for r in replay.records] == ["ingest", "lease"]
        assert [r["seq"] for r in replay.records] == [1, 2]
        assert replay.discarded_tails == 0

    def test_empty_directory(self, tmp_path):
        replay = read_journal(tmp_path / "missing")
        assert replay.records == [] and replay.last_seq == 0

    def test_reserved_fields_rejected(self, tmp_path):
        journal = Journal(tmp_path)
        with pytest.raises(ConfigurationError):
            journal.append("x", seq=1)
        journal.close()

    def test_closed_journal_rejects_append(self, tmp_path):
        journal = Journal(tmp_path)
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.append("x")

    def test_metrics_count_fsyncs(self, tmp_path):
        metrics = MetricsRegistry()
        journal = Journal(tmp_path, metrics=metrics)
        journal.append_commit("a")
        journal.append_commit("b")
        journal.close()
        assert metrics.counter("journal.fsyncs").value >= 2
        assert metrics.counter("journal.records").value == 2


class TestRotation:
    def test_segments_rotate_and_replay_in_order(self, tmp_path):
        journal = Journal(tmp_path, segment_max_bytes=200)
        for i in range(25):
            journal.append_commit("tick", i=i)
        journal.close()
        assert len(segment_paths(tmp_path)) > 1
        replay = read_journal(tmp_path)
        assert [r["i"] for r in replay.records] == list(range(25))

    def test_reopen_starts_fresh_segment(self, tmp_path):
        _write(tmp_path, [("a", {})])
        journal = Journal(tmp_path)
        journal.append_commit("b")
        journal.close()
        assert len(segment_paths(tmp_path)) == 2
        replay = read_journal(tmp_path)
        assert [r["type"] for r in replay.records] == ["a", "b"]
        assert [r["seq"] for r in replay.records] == [1, 2]


class TestReplayTolerance:
    def test_torn_tail_discarded(self, tmp_path):
        _write(tmp_path, [("a", {}), ("b", {})])
        segment = segment_paths(tmp_path)[-1]
        with open(segment, "ab") as fh:
            fh.write(b'{"seq":3,"type":"c","crc"')  # torn mid-write
        replay = read_journal(tmp_path)
        assert [r["type"] for r in replay.records] == ["a", "b"]
        assert replay.discarded_tails == 1

    def test_torn_last_line_with_bad_crc_discarded(self, tmp_path):
        _write(tmp_path, [("a", {})])
        segment = segment_paths(tmp_path)[-1]
        record = {"seq": 2, "type": "b", "crc": 12345}  # wrong crc
        with open(segment, "ab") as fh:
            fh.write(json.dumps(record).encode() + b"\n")
        replay = read_journal(tmp_path)
        assert [r["type"] for r in replay.records] == ["a"]
        assert replay.discarded_tails == 1

    def test_mid_segment_damage_is_fatal(self, tmp_path):
        _write(tmp_path, [("a", {}), ("b", {}), ("c", {})])
        segment = segment_paths(tmp_path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage not json\n"
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt, match="mid-segment"):
            read_journal(tmp_path)

    def test_seq_gap_is_fatal(self, tmp_path):
        _write(tmp_path, [("a", {}), ("b", {}), ("c", {})])
        segment = segment_paths(tmp_path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        del lines[1]  # drop seq 2 -> gap, but line 3 still valid
        segment.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt, match="discontinuity"):
            read_journal(tmp_path)

    def test_crc_protects_payload_tampering(self, tmp_path):
        _write(tmp_path, [("lease", {"session": "s1"}), ("x", {})])
        segment = segment_paths(tmp_path)[-1]
        raw = segment.read_bytes().replace(b'"s1"', b'"s2"')
        segment.write_bytes(raw)
        with pytest.raises(JournalCorrupt):
            read_journal(tmp_path)

    def test_crc_matches_manual_computation(self, tmp_path):
        _write(tmp_path, [("a", {"k": 1})])
        line = segment_paths(tmp_path)[-1].read_text().strip()
        record = json.loads(line)
        crc = record.pop("crc")
        canonical = json.dumps(record, sort_keys=True,
                               separators=(",", ":")).encode()
        assert crc == zlib.crc32(canonical)

    def test_nonnumeric_segment_name_is_fatal(self, tmp_path):
        _write(tmp_path, [("a", {})])
        (tmp_path / "wal-evil.jsonl").write_text("{}\n")
        with pytest.raises(JournalCorrupt, match="non-numeric"):
            read_journal(tmp_path)
