"""Synthetic dataset generators for tests, examples and benchmarks."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def regression_friedman(
    n: int, noise: float = 0.1, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """The Friedman #1 benchmark: 5 informative of 10 features.

    y = 10 sin(pi x0 x1) + 20 (x2 - 0.5)^2 + 10 x3 + 5 x4 + noise
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, size=(n, 10))
    y = (
        10 * np.sin(np.pi * x[:, 0] * x[:, 1])
        + 20 * (x[:, 2] - 0.5) ** 2
        + 10 * x[:, 3]
        + 5 * x[:, 4]
        + rng.normal(0, noise, size=n)
    )
    return x, y.reshape(-1, 1)


def two_moons(
    n: int, noise: float = 0.08, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Two interleaving half circles — a classification toy set."""
    if n < 2:
        raise ConfigurationError("n must be >= 2")
    rng = np.random.default_rng(seed)
    half = n // 2
    t1 = rng.uniform(0, np.pi, half)
    t2 = rng.uniform(0, np.pi, n - half)
    x1 = np.column_stack([np.cos(t1), np.sin(t1)])
    x2 = np.column_stack([1 - np.cos(t2), -np.sin(t2) + 0.5])
    x = np.vstack([x1, x2]) + rng.normal(0, noise, size=(n, 2))
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
    return x, y


def gaussian_blobs(
    n: int, centers: int = 3, dim: int = 2, spread: float = 0.3,
    seed: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Well-separated Gaussian clusters for clustering tests."""
    if n < centers:
        raise ConfigurationError("need at least one point per center")
    rng = np.random.default_rng(seed)
    mus = rng.uniform(-3, 3, size=(centers, dim))
    labels = rng.integers(0, centers, size=n)
    x = mus[labels] + rng.normal(0, spread, size=(n, dim))
    return x, labels


def latent_manifold(
    n: int, n_features: int = 20, latent_dim: int = 2,
    noise: float = 0.02, seed: int | None = None,
) -> np.ndarray:
    """Points on a smooth nonlinear ``latent_dim``-manifold embedded in
    ``n_features`` dimensions — the autoencoder test bed (a stand-in for MD
    conformation contact maps)."""
    if latent_dim >= n_features:
        raise ConfigurationError("latent_dim must be < n_features")
    rng = np.random.default_rng(seed)
    z = rng.uniform(-1, 1, size=(n, latent_dim))
    # random smooth embedding: sin/cos features of random linear maps
    w1 = rng.normal(size=(latent_dim, n_features))
    w2 = rng.normal(size=(latent_dim, n_features))
    x = np.sin(z @ w1) + np.cos(z @ w2)
    return x + rng.normal(0, noise, size=x.shape)
