"""Tests for the campaign state machine — including the property suites for
the lease/requeue lifecycle: no job is ever double-completed, attempt
counts are monotone, and replayed state always equals live state."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LeaseExpired, ServiceError
from repro.service import CampaignSpec, CampaignState, JobSpec
from repro.service.state import DONE, FAILED, LEASED, PENDING

from .hypothesis_settings import STANDARD_SETTINGS


def _spec(n_jobs=3, **overrides):
    overrides.setdefault("max_attempts", 3)
    jobs = tuple(
        JobSpec(f"j{i}", "quadrature", {"n_samples": 8}, seed=i)
        for i in range(n_jobs)
    )
    return CampaignSpec(name="t", jobs=jobs, **overrides)


def _fresh(n_jobs=3, **overrides):
    state = CampaignState(_spec(n_jobs, **overrides))
    state.apply({
        "type": "ingest",
        "jobs": [j.to_dict() for j in state.spec.jobs],
    })
    return state


class TestLifecycle:
    def test_ingest_then_lease_then_complete(self):
        state = _fresh(2)
        assert state.counts()[PENDING] == 2
        state.apply({"type": "lease", "session": "s", "jobs": ["j0"],
                     "deadline": 10.0})
        assert state.jobs["j0"].state == LEASED
        assert state.jobs["j0"].attempts == 1
        state.apply({"type": "complete", "session": "s", "job_id": "j0",
                     "result": {"x": 1}})
        assert state.jobs["j0"].state == DONE
        assert state.results() == {"j0": {"x": 1}}
        assert not state.finished  # j1 still pending

    def test_duplicate_ingest_rejected(self):
        state = _fresh(1)
        with pytest.raises(ServiceError, match="already ingested"):
            state.apply({"type": "ingest",
                         "jobs": [state.spec.jobs[0].to_dict()]})

    def test_lease_of_leased_job_rejected(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 10.0})
        with pytest.raises(ServiceError, match="not leasable"):
            state.apply({"type": "lease", "session": "b", "jobs": ["j0"],
                         "deadline": 10.0})

    def test_double_complete_rejected(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 10.0})
        state.apply({"type": "complete", "session": "a", "job_id": "j0",
                     "result": 1})
        with pytest.raises(ServiceError, match="already completed"):
            state.apply({"type": "complete", "session": "a",
                         "job_id": "j0", "result": 2})
        assert state.jobs["j0"].result == 1

    def test_complete_after_requeue_is_lease_expired(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 1.0})
        state.apply({"type": "requeue", "job_id": "j0", "reason": "expired",
                     "not_before": 0.0})
        with pytest.raises(LeaseExpired):
            state.apply({"type": "complete", "session": "a",
                         "job_id": "j0", "result": 1})
        assert state.jobs["j0"].state == PENDING

    def test_complete_by_other_session_is_lease_expired(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 10.0})
        with pytest.raises(LeaseExpired):
            state.apply({"type": "complete", "session": "b",
                         "job_id": "j0", "result": 1})

    def test_heartbeat_extends_deadline_for_holder_only(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 5.0})
        state.apply({"type": "heartbeat", "session": "a", "jobs": ["j0"],
                     "deadline": 9.0})
        assert state.jobs["j0"].lease_deadline == 9.0
        with pytest.raises(LeaseExpired):
            state.apply({"type": "heartbeat", "session": "b",
                         "jobs": ["j0"], "deadline": 99.0})

    def test_expired_leases_view(self):
        state = _fresh(2)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0", "j1"],
                     "deadline": 5.0})
        assert state.expired_leases(now=4.0) == []
        assert state.expired_leases(now=6.0) == ["j0", "j1"]

    def test_requeue_backoff_gates_leasable(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 1.0})
        state.apply({"type": "requeue", "job_id": "j0", "reason": "x",
                     "not_before": 100.0})
        assert state.leasable(now=50.0, limit=5) == []
        assert state.leasable(now=101.0, limit=5) == ["j0"]

    def test_fail_terminal(self):
        state = _fresh(1)
        state.apply({"type": "lease", "session": "a", "jobs": ["j0"],
                     "deadline": 1.0})
        state.apply({"type": "fail", "job_id": "j0", "reason": "exhausted"})
        assert state.jobs["j0"].state == FAILED
        assert state.finished  # FAILED is terminal: nothing in flight

    def test_cached_completion_skips_lease(self):
        state = _fresh(1)
        state.apply({"type": "cached", "job_id": "j0", "result": {"c": 1}})
        job = state.jobs["j0"]
        assert job.state == DONE and job.completed_by == "cache"
        assert job.attempts == 0

    def test_unknown_record_type_rejected(self):
        state = _fresh(1)
        with pytest.raises(Exception, match="unknown journal record"):
            state.apply({"type": "teleport"})

    def test_unknown_job_rejected(self):
        state = _fresh(1)
        with pytest.raises(ServiceError, match="unknown job"):
            state.apply({"type": "requeue", "job_id": "nope",
                         "not_before": 0.0})


# -- property suites ------------------------------------------------------------


@st.composite
def _histories(draw):
    """Random-but-valid transition histories over a small campaign.

    Each step leases every eligible job to a random session, then for each
    leased job randomly completes it, requeues it (lease expiry), fails it,
    or leaves it leased.
    """
    n_jobs = draw(st.integers(2, 6))
    n_rounds = draw(st.integers(1, 8))
    choices = draw(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4)),
        min_size=n_rounds * n_jobs, max_size=n_rounds * n_jobs,
    ))
    return n_jobs, n_rounds, choices


@given(_histories())
@STANDARD_SETTINGS
def test_lease_lifecycle_invariants(history):
    """No double-completion, monotone attempts, replay == live."""
    n_jobs, n_rounds, choices = history
    state = _fresh(n_jobs, max_attempts=10)
    records = [{
        "type": "ingest", "jobs": [j.to_dict() for j in state.spec.jobs],
    }]
    completed: set[str] = set()
    attempts_seen = {f"j{i}": 0 for i in range(n_jobs)}
    flat = iter(choices)
    now = 0.0
    for _ in range(n_rounds):
        now += 1.0
        for job_id in list(state.leasable(now, limit=n_jobs)):
            action, session_i = next(flat)
            session = f"s{session_i}"
            record = {"type": "lease", "session": session,
                      "jobs": [job_id], "deadline": now + 1.0}
            state.apply(record)
            records.append(record)
            # attempts must be strictly monotone in lease count
            assert state.jobs[job_id].attempts == attempts_seen[job_id] + 1
            attempts_seen[job_id] = state.jobs[job_id].attempts
            if action == 0:
                record = {"type": "complete", "session": session,
                          "job_id": job_id, "result": job_id}
                state.apply(record)
                records.append(record)
                assert job_id not in completed  # never double-completed
                completed.add(job_id)
            elif action == 1:
                record = {"type": "requeue", "job_id": job_id,
                          "reason": "expired", "not_before": now}
                state.apply(record)
                records.append(record)
                # a requeued job can never be completed by the old holder
                with pytest.raises((LeaseExpired, ServiceError)):
                    state.apply({"type": "complete", "session": session,
                                 "job_id": job_id, "result": "stale"})
            elif action == 2:
                record = {"type": "fail", "job_id": job_id,
                          "reason": "exhausted"}
                state.apply(record)
                records.append(record)
            # action == 3: leave leased (lease expires beyond this round)
    # every DONE job completed exactly once, with its own result
    results = state.results()
    assert set(results) == completed
    assert all(results[job_id] == job_id for job_id in completed)
    # replayed state is indistinguishable from live state
    replayed = CampaignState.replay(records, _spec(n_jobs, max_attempts=10))
    assert {k: vars(v) for k, v in replayed.jobs.items()} == \
        {k: vars(v) for k, v in state.jobs.items()}
    assert replayed.counts() == state.counts()


@given(st.integers(0, 2 ** 32 - 1), st.integers(2, 5))
@STANDARD_SETTINGS
def test_completed_result_immutable_under_stale_writes(seed, n_jobs):
    """Whatever interleaving of stale completes arrives, the first ack wins."""
    import random

    rng = random.Random(seed)
    state = _fresh(n_jobs, max_attempts=10)
    for i in range(n_jobs):
        state.apply({"type": "lease", "session": f"s{i}",
                     "jobs": [f"j{i}"], "deadline": 10.0})
        state.apply({"type": "complete", "session": f"s{i}",
                     "job_id": f"j{i}", "result": f"first-{i}"})
    for _ in range(10):
        victim = rng.randrange(n_jobs)
        with pytest.raises(ServiceError):
            state.apply({"type": "complete",
                         "session": f"s{rng.randrange(n_jobs)}",
                         "job_id": f"j{victim}", "result": "stale"})
    assert state.results() == {
        f"j{i}": f"first-{i}" for i in range(n_jobs)
    }
