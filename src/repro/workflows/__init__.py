"""AI-coordinated workflow machinery and the Section V case studies.

- :mod:`repro.workflows.dag` — task graphs executed on the discrete-event
  engine (the Balsam/RAPTOR orchestration role);
- :mod:`repro.workflows.facility` — multi-facility placement (Summit,
  Perlmutter, ThetaGPU, Cerebras CS-2 — the cross-facility campaign of
  Trifan et al.);
- :mod:`repro.workflows.steering` — the DeepDriveMD steering pattern:
  autoencoder-scored outlier detection redirecting simulation ensembles;
- :mod:`repro.workflows.active_learning` — surrogate refinement loops;
- ``case_materials`` / ``case_drug`` / ``case_biology`` — the three
  Section V case studies end to end.
"""

from repro.workflows.active_learning import ActiveLearningLoop, ActiveLearningResult
from repro.workflows.dag import Task, TaskGraph, WorkflowRun
from repro.workflows.facility import FACILITIES, Facility
from repro.workflows.steering import SteeringLoop, SteeringResult

__all__ = [
    "ActiveLearningLoop",
    "ActiveLearningResult",
    "FACILITIES",
    "Facility",
    "SteeringLoop",
    "SteeringResult",
    "Task",
    "TaskGraph",
    "WorkflowRun",
]
