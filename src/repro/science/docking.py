"""Synthetic compound-binding landscape with two scoring fidelities.

The drug pipelines the paper surveys (Glaser, Blanchard, Saadi/IMPECCABLE)
share one structure: a huge compound library, a cheap-but-noisy scoring
tier (docking / learned surrogate), and an expensive accurate tier (MD
free-energy refinement). This module provides a deterministic ground truth
with both tiers so the workflow logic — rank with the cheap tier, escalate
the top fraction, retrain — can be validated quantitatively (does the loop
actually enrich for true binders?).

Compounds are fixed-length integer genomes (fragment sequences), matching
the GA representation of Blanchard et al. The true affinity is a rugged but
deterministic function: per-position fragment contributions plus pairwise
epistatic couplings — an NK-style landscape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompoundLibrary:
    """A virtual library of ``n_compounds`` random genomes."""

    genomes: np.ndarray  # (n, length) ints in [0, n_fragments)
    n_fragments: int

    @classmethod
    def random(
        cls,
        n_compounds: int,
        genome_length: int = 12,
        n_fragments: int = 16,
        seed: int | None = None,
    ) -> "CompoundLibrary":
        if n_compounds < 1 or genome_length < 1 or n_fragments < 2:
            raise ConfigurationError("bad library dimensions")
        rng = np.random.default_rng(seed)
        genomes = rng.integers(0, n_fragments, size=(n_compounds, genome_length))
        return cls(genomes=genomes, n_fragments=n_fragments)

    def __len__(self) -> int:
        return self.genomes.shape[0]

    def features(self, genomes: np.ndarray | None = None) -> np.ndarray:
        """One-hot fragment features, (n, length * n_fragments) — what the
        surrogate models consume."""
        g = self.genomes if genomes is None else np.atleast_2d(genomes)
        n, length = g.shape
        out = np.zeros((n, length * self.n_fragments))
        rows = np.repeat(np.arange(n), length)
        cols = (np.arange(length) * self.n_fragments)[None, :] + g
        out[rows, cols.ravel()] = 1.0
        return out


class DockingOracle:
    """Ground-truth binding affinity plus its two observable fidelities.

    - ``true_affinity``: hidden ground truth (higher = better binder).
    - ``docking_score``: cheap tier — truth corrupted by a systematic bias
      (a random linear misweighting) and noise. Deterministic per compound.
    - ``md_refine``: expensive tier — truth plus small zero-mean noise, with
      a call counter so workflows can account their simulation budget.
    """

    def __init__(
        self,
        genome_length: int = 12,
        n_fragments: int = 16,
        epistasis: float = 0.5,
        docking_noise: float = 3.0,
        md_noise: float = 0.05,
        seed: int | None = None,
    ):
        if genome_length < 2 or n_fragments < 2:
            raise ConfigurationError("bad landscape dimensions")
        if epistasis < 0 or docking_noise < 0 or md_noise < 0:
            raise ConfigurationError("noise/epistasis must be non-negative")
        self.genome_length = genome_length
        self.n_fragments = n_fragments
        rng = np.random.default_rng(seed)
        # additive fragment contributions per position
        self._additive = rng.normal(0, 1, size=(genome_length, n_fragments))
        # pairwise epistatic couplings between adjacent positions
        self._pairwise = epistasis * rng.normal(
            0, 1, size=(genome_length - 1, n_fragments, n_fragments)
        )
        # the docking tier's systematic misweighting and deterministic noise
        self._bias = rng.normal(0, docking_noise, size=(genome_length, n_fragments))
        self.md_noise = md_noise
        self._md_rng = np.random.default_rng(None if seed is None else seed + 1)
        self.md_calls = 0

    def _check(self, genomes: np.ndarray) -> np.ndarray:
        g = np.atleast_2d(np.asarray(genomes, dtype=int))
        if g.shape[1] != self.genome_length:
            raise ConfigurationError(
                f"genomes must have length {self.genome_length}, got {g.shape[1]}"
            )
        if (g < 0).any() or (g >= self.n_fragments).any():
            raise ConfigurationError("fragment index out of range")
        return g

    def true_affinity(self, genomes: np.ndarray) -> np.ndarray:
        g = self._check(genomes)
        pos = np.arange(self.genome_length)
        additive = self._additive[pos, g].sum(axis=1)
        left = g[:, :-1]
        right = g[:, 1:]
        pair_pos = np.arange(self.genome_length - 1)
        pairwise = self._pairwise[pair_pos, left, right].sum(axis=1)
        return additive + pairwise

    def docking_score(self, genomes: np.ndarray) -> np.ndarray:
        """Cheap tier: deterministic, biased. Free to call."""
        g = self._check(genomes)
        pos = np.arange(self.genome_length)
        bias = self._bias[pos, g].sum(axis=1)
        return self.true_affinity(g) + bias

    def md_refine(self, genomes: np.ndarray) -> np.ndarray:
        """Expensive tier: near-truth. Increments ``md_calls`` per compound."""
        g = self._check(genomes)
        self.md_calls += g.shape[0]
        return self.true_affinity(g) + self._md_rng.normal(
            0, self.md_noise, size=g.shape[0]
        )

    def enrichment(
        self, selected: np.ndarray, library: CompoundLibrary, top_fraction: float = 0.01
    ) -> float:
        """Fraction of the library's true top-``top_fraction`` binders that
        appear in ``selected`` (rows of genomes) — the pipeline's figure of
        merit."""
        if not 0 < top_fraction <= 1:
            raise ConfigurationError("top_fraction must be in (0, 1]")
        truth = self.true_affinity(library.genomes)
        k = max(1, int(len(library) * top_fraction))
        top_idx = set(np.argsort(truth)[-k:].tolist())
        sel = self._check(selected)
        # match selected genomes back to library rows
        lib = library.genomes
        found = 0
        for row in sel:
            matches = np.where((lib == row).all(axis=1))[0]
            if any(int(m) in top_idx for m in matches):
                found += 1
        return found / k
