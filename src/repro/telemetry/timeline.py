"""Utilization timelines derived from resource occupancy samples.

Every grant and release of an instrumented :class:`repro.sim.Resource`
appends a :class:`~repro.telemetry.spans.CounterSample`; a
:class:`UtilizationTimeline` integrates that step function into the numbers
the paper reports per facility — busy node-seconds, time-averaged
utilization, and peak occupancy. Invariants (checked by the property
suite): ``0 <= utilization <= 1`` and ``busy_node_seconds <= capacity *
span`` whenever every sample satisfies ``0 <= value <= capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

from repro.telemetry.spans import CounterSample


@dataclass(frozen=True)
class UtilizationTimeline:
    """A right-continuous step function ``value(t)`` over ``[t0, tN]``.

    ``values[i]`` holds from ``times[i]`` until ``times[i+1]`` (the last
    value contributes no area — the timeline ends at its final sample).
    """

    resource: str
    capacity: float
    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.resource}: capacity must be > 0")
        if len(self.times) != len(self.values):
            raise ConfigurationError(
                f"{self.resource}: times and values must align"
            )
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ConfigurationError(
                f"{self.resource}: sample times must be non-decreasing"
            )

    @classmethod
    def from_samples(
        cls, resource: str, samples: list[CounterSample]
    ) -> "UtilizationTimeline":
        """Build from the telemetry samples recorded for one resource."""
        ours = [s for s in samples if s.resource == resource]
        if not ours:
            raise ConfigurationError(f"no samples recorded for {resource!r}")
        capacities = [s.capacity for s in ours if s.capacity is not None]
        capacity = max(capacities) if capacities else max(s.value for s in ours)
        return cls(
            resource=resource,
            capacity=capacity or 1.0,
            times=tuple(s.time for s in ours),
            values=tuple(s.value for s in ours),
        )

    @property
    def span(self) -> float:
        """Wall/simulated time between the first and last sample."""
        if not self.times:
            return 0.0
        return self.times[-1] - self.times[0]

    def busy_time(self) -> float:
        """Integral of ``value(t) dt`` — busy node-seconds for node pools."""
        return sum(
            v * (t1 - t0)
            for v, t0, t1 in zip(self.values, self.times, self.times[1:])
        )

    def utilization(self) -> float:
        """Time-averaged occupancy fraction over the sampled span.

        When no sample ever exceeds the capacity the true fraction is <= 1
        by construction, so summation round-off (the busy-time integral is
        a float sum) is clamped away rather than reported as utilization
        above 100%.
        """
        if self.span == 0.0:
            return 0.0
        utilization = self.busy_time() / (self.capacity * self.span)
        if utilization > 1.0 and self.peak() <= self.capacity:
            return 1.0
        return utilization

    def peak(self) -> float:
        """Highest sampled occupancy."""
        return max(self.values) if self.values else 0.0

    def value_at(self, t: float) -> float:
        """Occupancy at time ``t`` (0 before the first sample)."""
        value = 0.0
        for time, v in zip(self.times, self.values):
            if time > t:
                break
            value = v
        return value
