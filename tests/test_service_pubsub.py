"""Tests for the live event streaming plane: wire frames, the pubsub hub's
seq/ring/drop behavior, and the subscribe/events ops end to end against a
running campaign server (including the in-band end-of-stream at drain)."""

import contextlib
import io
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.errors import ProtocolError, ServiceError
from repro.exec.cache import CACHE_DIR_ENV
from repro.resilience.retry import RetryPolicy
from repro.service import (
    CampaignSpec,
    FRAME_VERSION,
    Frame,
    JobSpec,
    PubSubHub,
    ServiceClient,
    TOPICS,
    decode_frame,
    encode_frame,
    eos_frame,
    read_frame,
    read_journal,
    serve,
)
from repro.service.pubsub import SUBSCRIBER_QUEUE_FRAMES, frames_from_journal

FAST = dict(
    lease_timeout_s=0.4,
    heartbeat_interval_s=0.1,
    max_attempts=4,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
)

TEST_POLICY = RetryPolicy(max_attempts=4, backoff_base=0.05,
                          backoff_factor=2.0, backoff_max=0.5,
                          jitter_fraction=0.0, deadline_s=10.0)


def _jobs(n, handler="quadrature", **params):
    return tuple(
        JobSpec(f"j{i}", handler, dict(params) or {"n_samples": 16},
                seed=i)
        for i in range(n)
    )


@contextlib.contextmanager
def running_server(spec, journal_dir=None):
    tmp = Path(tempfile.mkdtemp(prefix="rpub-"))
    sock = tmp / "s"
    jdir = Path(journal_dir) if journal_dir else tmp / "journal"
    old_cache = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp / "cache")
    thread = threading.Thread(
        target=serve, args=(spec, jdir, sock),
        kwargs=dict(sweep_interval_s=0.05), daemon=True,
    )
    thread.start()
    client = ServiceClient(sock, session="test", policy=TEST_POLICY)
    client.wait_ready(timeout_s=20.0)
    try:
        yield client, jdir
    finally:
        with contextlib.suppress(Exception):
            client.drain()
        thread.join(timeout=10)
        if old_cache is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = old_cache
        assert not thread.is_alive(), "server failed to drain"


def _run_jobs(client, n):
    from repro.service import run_worker

    client.submit(_jobs(n))
    run_worker(client.socket_path, max_jobs=n)
    return client.wait_finished(timeout_s=30.0)


class TestWireFormat:
    def test_encode_decode_round_trip(self):
        frame = Frame(topic="journal", seq=7, payload={"type": "ingest"})
        wire = encode_frame(frame)
        header, body, trailer = wire.split(b"\n")
        assert int(header) == len(body)
        assert trailer == b""
        assert decode_frame(body) == frame

    def test_read_frame_stream(self):
        frames = [Frame(topic="events", seq=i, payload={"i": i})
                  for i in (1, 2, 3)]
        fh = io.BytesIO(b"".join(encode_frame(f) for f in frames))
        assert [read_frame(fh) for _ in range(3)] == frames
        assert read_frame(fh) is None  # clean EOF

    def test_read_frame_torn_mid_frame_is_none(self):
        wire = encode_frame(Frame(topic="events", seq=1, payload={}))
        fh = io.BytesIO(wire[:-4])
        assert read_frame(fh) is None

    def test_read_frame_bad_header_raises(self):
        with pytest.raises(ProtocolError, match="not a length"):
            read_frame(io.BytesIO(b"xyz\n"))

    def test_version_skew_fails_loudly(self):
        body = json.dumps({
            "payload": {}, "seq": 1, "topic": "events",
            "v": FRAME_VERSION + 1,
        }).encode()
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(body)

    def test_eos_frame_is_reserved_seq_zero(self):
        frame = eos_frame("journal")
        assert frame.is_eos
        assert frame.seq == 0
        assert not Frame(topic="journal", seq=1, payload={}).is_eos
        # survives the wire
        wire = encode_frame(frame)
        assert read_frame(io.BytesIO(wire)).is_eos


class TestPubSubHub:
    def test_seqs_are_per_topic_monotonic(self):
        hub = PubSubHub()
        assert hub.publish("events", {"a": 1}).seq == 1
        assert hub.publish("events", {"a": 2}).seq == 2
        assert hub.publish("counters", {"b": 1}).seq == 1
        assert hub.last_seq("events") == 2

    def test_caller_seq_must_advance(self):
        hub = PubSubHub()
        hub.publish("journal", {"type": "campaign"}, seq=5)
        with pytest.raises(ServiceError, match="in order"):
            hub.publish("journal", {"type": "ingest"}, seq=5)

    def test_unknown_topic_rejected(self):
        hub = PubSubHub()
        with pytest.raises(ProtocolError, match="unknown event topic"):
            hub.publish("gossip", {})
        with pytest.raises(ProtocolError, match="unknown event topic"):
            hub.subscribe("gossip")

    def test_ring_backlog_filters_since_seq(self):
        hub = PubSubHub(history=4)
        for i in range(8):
            hub.publish("events", {"i": i})
        backlog = hub.backlog("events", since_seq=6)
        assert [f.seq for f in backlog] == [7, 8]
        # ring bound: the oldest frames aged out
        assert [f.seq for f in hub.backlog("events")] == [5, 6, 7, 8]

    def test_subscriber_receives_live_frames(self):
        hub = PubSubHub()
        hub.publish("events", {"i": 0})
        token, backlog, queue = hub.subscribe("events", since_seq=0)
        assert [f.seq for f in backlog] == [1]
        hub.publish("events", {"i": 1})
        assert queue.get_nowait().seq == 2
        hub.unsubscribe(token)
        hub.publish("events", {"i": 2})
        assert queue.empty()

    def test_slow_subscriber_drops_are_counted(self):
        from repro.telemetry.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        hub = PubSubHub(metrics=metrics)
        _, _, queue = hub.subscribe("events")
        for i in range(SUBSCRIBER_QUEUE_FRAMES + 5):
            hub.publish("events", {"i": i})
        assert queue.qsize() == SUBSCRIBER_QUEUE_FRAMES
        assert metrics.counter("service.subscriber_drops").value == 5

    def test_close_always_lands_the_sentinel(self):
        hub = PubSubHub()
        _, _, queue = hub.subscribe("events")
        for i in range(SUBSCRIBER_QUEUE_FRAMES):
            hub.publish("events", {"i": i})
        hub.close()
        drained = []
        while not queue.empty():
            drained.append(queue.get_nowait())
        assert drained[-1] is None
        with pytest.raises(ServiceError, match="closed"):
            hub.publish("events", {})

    def test_frames_from_journal(self):
        records = [{"seq": i, "type": "ingest"} for i in (1, 2, 3)]
        frames = frames_from_journal(records, since_seq=1)
        assert [f.seq for f in frames] == [2, 3]
        assert all(f.topic == "journal" for f in frames)


class TestServerStreaming:
    def test_one_shot_events_catch_up_matches_wal(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        with running_server(spec) as (client, jdir):
            _run_jobs(client, 3)
            frames = client.events("journal")
            records = read_journal(jdir).records
            assert [f.seq for f in frames] == [r["seq"] for r in records]
            assert [f.payload for f in frames] == records
            assert frames[0].payload["type"] == "campaign"

    def test_status_reports_stream_positions(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        with running_server(spec) as (client, _):
            _run_jobs(client, 2)
            status = client.status()
            assert status["journal_seq"] >= 1
            assert set(status["event_seqs"]) == set(TOPICS)
            assert status["event_seqs"]["journal"] == status["journal_seq"]

    def test_telemetry_topics_stream_op_spans(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        with running_server(spec) as (client, _):
            _run_jobs(client, 2)
            spans = client.events("spans", max_frames=10_000)
            assert spans, "server op spans should stream on the spans topic"
            assert all(f.payload["type"] == "span" for f in spans)
            assert any(f.payload["name"].startswith("op:")
                       for f in spans)

    def test_live_subscriber_sees_drain_then_eos(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        seen: list[Frame] = []
        with running_server(spec) as (client, jdir):
            tail = ServiceClient(client.socket_path, session="tail",
                                 policy=TEST_POLICY)

            def _consume():
                for frame in tail.subscribe("journal", timeout_s=30.0):
                    seen.append(frame)

            thread = threading.Thread(target=_consume, daemon=True)
            thread.start()
            _run_jobs(client, 2)
            client.drain()
            thread.join(timeout=15)
            assert not thread.is_alive(), "subscriber missed the eos"
        seqs = [f.seq for f in seen]
        assert seqs == list(range(1, len(seen) + 1)), "gap or disorder"
        assert seen[-1].payload["type"] == "drain"
        records = read_journal(jdir).records
        assert [f.payload for f in seen] == records

    def test_subscribe_during_drain_serves_backlog_only(self, tmp_path):
        # The drain window must not strand a reconnecting follower: it
        # gets the remaining backlog (journal replay includes the drain
        # record) and a clean end instead of a rejection.
        from repro.service.server import CampaignServer

        spec = CampaignSpec(name="t", jobs=(), **FAST)
        server = CampaignServer(spec, tmp_path / "journal", tmp_path / "s")
        server._commit("campaign", spec=spec.to_dict())
        server._draining = True
        response = server._op_subscribe({"op": "subscribe",
                                         "topic": "journal"})
        token, topic, backlog, queue = response["_stream"]
        assert token is None and queue is None, "no live tail during drain"
        assert topic == "journal"
        assert [f.payload["type"] for f in backlog] == ["campaign"]
        assert not server.hub._subscribers, "drain path must not register"

    def test_follow_ends_cleanly_on_drain(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        seen: list[Frame] = []
        with running_server(spec) as (client, jdir):
            tail = ServiceClient(client.socket_path, session="tail",
                                 policy=TEST_POLICY)

            def _consume():
                for frame in tail.follow("journal", timeout_s=30.0,
                                         give_up_s=10.0):
                    seen.append(frame)

            thread = threading.Thread(target=_consume, daemon=True)
            thread.start()
            _run_jobs(client, 2)
            client.drain()
            thread.join(timeout=15)
            assert not thread.is_alive()
        assert [f.seq for f in seen] == list(range(1, len(seen) + 1))
        assert seen[-1].payload["type"] == "drain"

    def test_unknown_topic_over_the_wire(self):
        spec = CampaignSpec(name="t", jobs=(), **FAST)
        with running_server(spec) as (client, _):
            with pytest.raises(ProtocolError, match="unknown event topic"):
                client.events("gossip")
            with pytest.raises(ProtocolError, match="unknown event topic"):
                list(client.subscribe("gossip"))
