"""Parallelisation plans and data-source selection."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.network.collectives import AllreduceAlgorithm


class DataSource(enum.Enum):
    """Where the input pipeline reads training samples from.

    ``MEMORY`` models the in-memory synthetic-data configuration the paper
    uses to *estimate* required read bandwidth (no I/O cost at all).
    """

    SHARED_FS = "shared_fs"
    NVME = "nvme"
    MEMORY = "memory"


@dataclass(frozen=True)
class ParallelismPlan:
    """How a model is laid out across GPUs.

    Parameters
    ----------
    local_batch:
        Per-replica micro-batch size (samples per optimizer *micro*-step).
    model_shards:
        GPUs per model replica. 1 = pure data parallelism. Up to the node's
        GPU count the shards communicate over NVLink (the scheme Yang et al.
        use for the batch-size-limited PI-GAN); beyond that the activation
        exchange crosses the fabric.
    accumulation_steps:
        Gradient-accumulation factor: micro-steps per allreduce. Blanchard
        et al. use this to reach a 5.8 M global batch.
    overlap_fraction:
        Fraction of compute that gradient communication can hide under
        (backward-pass overlap). 0 = fully exposed, 1 = perfectly hidden up
        to the compute time.
    io_overlap_fraction:
        Same for the input pipeline (double-buffered prefetch ~= 1.0).
    compute_jitter_cv:
        Coefficient of variation of per-rank compute time. Synchronous SGD
        waits for the slowest rank each step; the expected maximum of ``n``
        i.i.d. rank times exceeds the mean by ~``cv * sqrt(2 ln n)``, which
        is the dominant efficiency loss once communication is overlapped
        (the residual ~9 % Kurth et al. observe at 4 560 nodes).
    """

    local_batch: int
    model_shards: int = 1
    accumulation_steps: int = 1
    overlap_fraction: float = 0.7
    io_overlap_fraction: float = 1.0
    compute_jitter_cv: float = 0.0
    #: None = tuned library behaviour (pick the fastest algorithm per
    #: message size, as NCCL/MPI do); a specific value pins the algorithm
    #: (the ablation benchmarks pin RING to expose the latency wall).
    allreduce_algorithm: AllreduceAlgorithm | None = None

    def __post_init__(self) -> None:
        if self.local_batch < 1:
            raise ConfigurationError("local_batch must be >= 1")
        if self.model_shards < 1:
            raise ConfigurationError("model_shards must be >= 1")
        if self.accumulation_steps < 1:
            raise ConfigurationError("accumulation_steps must be >= 1")
        for name in ("overlap_fraction", "io_overlap_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if not 0.0 <= self.compute_jitter_cv < 1.0:
            raise ConfigurationError("compute_jitter_cv must be in [0, 1)")

    def replicas(self, n_gpus: int) -> int:
        """Number of data-parallel model replicas on ``n_gpus`` GPUs."""
        if n_gpus < self.model_shards:
            raise ConfigurationError(
                f"{n_gpus} GPUs cannot hold a {self.model_shards}-shard replica"
            )
        if n_gpus % self.model_shards:
            raise ConfigurationError(
                f"model_shards={self.model_shards} must divide the GPU count "
                f"({n_gpus})"
            )
        return n_gpus // self.model_shards

    def global_batch(self, n_gpus: int) -> int:
        """Samples per optimizer step across the whole job."""
        return self.replicas(n_gpus) * self.local_batch * self.accumulation_steps
