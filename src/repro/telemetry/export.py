"""Exporters: Chrome trace-event JSON, JSON-lines, and a text summary.

``chrome_trace`` emits the Trace Event Format understood by Perfetto and
``chrome://tracing``: one trace *process* per facility, one *thread* (track)
per node/resource/task, complete ``X`` events for spans, process-scoped
``i`` instants for fault injections and requeues, and ``C`` counter tracks
for resource occupancy. Timestamps are microseconds of simulated time.

All exporters are deterministic: pids and tids are assigned in first-
appearance order, records serialize in record order, and the JSON encoder
uses sorted keys and fixed separators — identical runs produce
byte-identical files (the property the test suite pins).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.telemetry.context import Telemetry
from repro.telemetry.spans import CounterSample, InstantEvent, Span

#: Seconds -> trace microseconds.
_US = 1e6


def _require_materialized(telemetry: Telemetry) -> None:
    """Exporting a sink-backed handle directly would silently drop every
    spilled record; the shard files are the export source instead."""
    if getattr(telemetry, "sink", None) is not None:
        raise ConfigurationError(
            "telemetry records were spilled to a sink; export from the "
            "shards instead (repro.telemetry.stream.load_shards)"
        )


def _clean(attrs: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe args: scalars pass through, anything else goes via repr."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class _Layout:
    """First-appearance-ordered pid/tid assignment."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[str, str], int] = {}

    def pid(self, facility: str) -> int:
        if facility not in self.pids:
            self.pids[facility] = len(self.pids) + 1
        return self.pids[facility]

    def tid(self, facility: str, track: str) -> int:
        key = (facility, track)
        if key not in self.tids:
            # tids restart at 1 within each facility
            n_in_facility = sum(1 for f, _ in self.tids if f == facility)
            self.tids[key] = n_in_facility + 1
        return self.tids[key]


def chrome_trace(telemetry: Telemetry) -> dict:
    """The trace as a Trace-Event-Format object (``traceEvents`` + units)."""
    _require_materialized(telemetry)
    layout = _Layout()
    spans = []
    for span in telemetry.spans:
        if not span.finished:
            continue
        assert span.end is not None
        spans.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": layout.pid(span.facility),
            "tid": layout.tid(span.facility, span.track),
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "args": _clean({"span_id": span.span_id,
                            "parent_id": span.parent_id, **span.attrs}),
        })
    instants = [
        {
            "ph": "i",
            "s": "p",
            "name": event.name,
            "cat": event.category,
            "pid": layout.pid(event.facility),
            "tid": layout.tid(event.facility, event.track),
            "ts": event.time * _US,
            "args": _clean(event.attrs),
        }
        for event in telemetry.instants
    ]
    counters = [
        {
            "ph": "C",
            "name": sample.resource,
            "pid": layout.pid(sample.facility),
            "tid": 0,
            "ts": sample.time * _US,
            "args": {"in_use": sample.value},
        }
        for sample in telemetry.samples
    ]
    metadata = []
    for facility, pid in layout.pids.items():
        metadata.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": facility},
        })
    for (facility, track), tid in layout.tids.items():
        metadata.append({
            "ph": "M", "name": "thread_name",
            "pid": layout.pids[facility], "tid": tid,
            "args": {"name": track},
        })
        metadata.append({
            "ph": "M", "name": "thread_sort_index",
            "pid": layout.pids[facility], "tid": tid,
            "args": {"sort_index": tid},
        })
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [*metadata, *spans, *instants, *counters],
    }


def chrome_trace_json(telemetry: Telemetry) -> str:
    """Byte-stable serialization of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(telemetry), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    """Write a ``.trace.json`` loadable in Perfetto / chrome://tracing.

    Written atomically (tmp + rename) so an interrupted export never leaves
    a torn, unparseable trace behind.
    """
    from repro.atomicio import atomic_write_text

    atomic_write_text(path, chrome_trace_json(telemetry) + "\n")


def span_record(span: Span) -> dict[str, Any]:
    """The JSONL/wire record for one finished span.

    One wire format, three consumers: :func:`to_jsonl` lines, the
    :class:`~repro.telemetry.stream.ShardedJsonlSink` shard lines, and the
    pubsub ``spans`` topic payloads — so a record read back from any of
    them re-exports byte-identically (``_clean`` is idempotent and JSON
    float repr round-trips exactly).
    """
    return {
        "type": "span", "id": span.span_id, "name": span.name,
        "cat": span.category, "facility": span.facility,
        "track": span.track, "start": span.start, "end": span.end,
        "parent": span.parent_id, "attrs": _clean(span.attrs),
    }


def instant_record(event: InstantEvent) -> dict[str, Any]:
    """The JSONL/wire record for one instant event."""
    return {
        "type": "instant", "name": event.name, "cat": event.category,
        "facility": event.facility, "track": event.track,
        "time": event.time, "attrs": _clean(event.attrs),
    }


def sample_record(sample: CounterSample) -> dict[str, Any]:
    """The JSONL/wire record for one counter sample."""
    return {
        "type": "sample", "resource": sample.resource,
        "time": sample.time, "value": sample.value,
        "capacity": sample.capacity, "facility": sample.facility,
    }


def metric_records(metrics) -> Iterator[dict[str, Any]]:
    """One record per instrument; ``type`` is counter/gauge/histogram."""
    for name, data in metrics.as_dict().items():
        yield {"name": name, **data}


def encode_record(record: dict[str, Any]) -> str:
    """Canonical one-line encoding shared by every JSONL writer."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def iter_jsonl_records(telemetry: Telemetry) -> Iterator[dict[str, Any]]:
    """Records in export order: spans, instants, samples, then metrics."""
    _require_materialized(telemetry)
    for span in telemetry.spans:
        if not span.finished:
            continue
        yield span_record(span)
    for event in telemetry.instants:
        yield instant_record(event)
    for sample in telemetry.samples:
        yield sample_record(sample)
    yield from metric_records(telemetry.metrics)


def to_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per line: spans, instants, samples, then metrics."""
    return "\n".join(
        encode_record(record) for record in iter_jsonl_records(telemetry)
    )


def write_jsonl(telemetry: Telemetry, path: str) -> None:
    """Stream the JSONL export to ``path`` line by line, atomically.

    Unlike ``atomic_write_text(path, to_jsonl(tel))`` this never builds the
    whole export in memory — each record is encoded and written as it is
    produced, so a million-span trace exports in bounded memory. The file
    is byte-identical to ``to_jsonl(telemetry) + "\\n"``.
    """
    from repro.atomicio import atomic_writer

    with atomic_writer(path) as fh:
        for record in iter_jsonl_records(telemetry):
            fh.write(encode_record(record).encode("utf-8") + b"\n")


def summary(telemetry: Telemetry) -> str:
    """Plain-text run summary: spans by category, utilization, metrics."""
    _require_materialized(telemetry)
    finished = telemetry.finished_spans()
    by_cat: dict[str, list[float]] = {}
    for span in finished:
        by_cat.setdefault(span.category, []).append(span.duration)
    lines = [
        "Telemetry summary",
        f"  spans                {len(finished)} complete / "
        f"{len(telemetry.spans)} recorded",
        f"  instant events       {len(telemetry.instants)}",
    ]
    for cat in sorted(by_cat):
        durations = by_cat[cat]
        lines.append(
            f"    {cat:<18} n={len(durations):<6} "
            f"total={sum(durations):.6g} s  "
            f"mean={sum(durations) / len(durations):.6g} s"
        )
    resources = telemetry.sampled_resources()
    if resources:
        lines.append("  utilization")
        for name in resources:
            timeline = telemetry.utilization(name)
            lines.append(
                f"    {name:<18} busy={timeline.busy_time():.6g} node-s  "
                f"util={timeline.utilization():.1%}  "
                f"peak={timeline.peak():g}/{timeline.capacity:g}"
            )
    if len(telemetry.metrics):
        lines.append("  metrics")
        lines.extend("  " + line for line in telemetry.metrics.summary_lines())
    return "\n".join(lines)
