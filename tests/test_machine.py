"""Tests for repro.machine: GPU/CPU specs, nodes, systems, OLCF factories."""

import pytest

from repro import units
from repro.errors import CapacityError, ConfigurationError
from repro.machine import (
    AMD_EPYC_7302,
    IBM_POWER9,
    NVIDIA_K80,
    NVIDIA_V100,
    CpuSpec,
    GpuSpec,
    NodeSpec,
    Precision,
    andes,
    rhea,
    summit,
    summit_high_mem_node,
    summit_node,
)


class TestGpuSpec:
    def test_v100_mixed_peak(self):
        assert NVIDIA_V100.peak(Precision.MIXED) == 125e12

    def test_v100_fp64_peak(self):
        assert NVIDIA_V100.peak(Precision.FP64) == pytest.approx(7.8e12)

    def test_v100_memory_is_16_gib(self):
        assert NVIDIA_V100.memory_bytes == 16 * units.GIB

    def test_k80_has_no_tensor_cores_falls_back_to_fp32(self):
        assert NVIDIA_K80.peak(Precision.MIXED) == NVIDIA_K80.peak(Precision.FP32)

    def test_unknown_precision_raises(self):
        gpu = GpuSpec("x", {Precision.FP32: 1e12}, 1e9, 1e9)
        with pytest.raises(ConfigurationError):
            gpu.peak(Precision.FP64)

    def test_rejects_empty_peaks(self):
        with pytest.raises(ConfigurationError):
            GpuSpec("x", {}, 1e9, 1e9)

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ConfigurationError):
            GpuSpec("x", {Precision.FP32: 0.0}, 1e9, 1e9)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ConfigurationError):
            GpuSpec("x", {Precision.FP32: 1e12}, 0.0, 1e9)


class TestCpuSpec:
    def test_power9_reserves_one_core(self):
        assert IBM_POWER9.cores == 22
        assert IBM_POWER9.usable_cores == 21

    def test_peak_flops_positive(self):
        assert AMD_EPYC_7302.peak_flops > 0

    def test_rejects_usable_above_physical(self):
        with pytest.raises(ConfigurationError):
            CpuSpec("x", cores=4, usable_cores=5, clock_hz=1e9)


class TestSummitNode:
    def test_composition(self):
        node = summit_node()
        assert node.cpu_count == 2
        assert node.gpu_count == 6
        assert node.has_nvme

    def test_42_usable_cores(self):
        # "One POWER9 core of each processor is reserved for the system,
        # leaving 42 cores per node to run user processes."
        assert summit_node().usable_cores == 42

    def test_hbm_96_gb(self):
        assert summit_node().hbm_bytes == 6 * 16 * units.GIB

    def test_peak_750_tf_mixed(self):
        assert summit_node().peak_flops(Precision.MIXED) == 750e12

    def test_high_mem_node_has_double_hbm(self):
        assert summit_high_mem_node().hbm_bytes == 2 * summit_node().hbm_bytes

    def test_high_mem_node_nvme_6_4_tb(self):
        assert summit_high_mem_node().nvme_bytes == pytest.approx(6.4e12)

    def test_cpu_only_node_peak_uses_cpu(self):
        node = rhea().node
        assert node.gpu_count == 0
        assert node.peak_flops(Precision.FP64) == 2 * node.cpus.peak_flops

    def test_gpu_count_without_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(
                name="bad", cpus=IBM_POWER9, cpu_count=2, gpus=None, gpu_count=6,
                host_memory_bytes=1e9, nvme_bytes=0, nvme_read_bandwidth=0,
                nvme_write_bandwidth=0, injection_bandwidth=1e9,
            )

    def test_nvme_without_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(
                name="bad", cpus=IBM_POWER9, cpu_count=2, gpus=None, gpu_count=0,
                host_memory_bytes=1e9, nvme_bytes=1e12, nvme_read_bandwidth=0,
                nvme_write_bandwidth=0, injection_bandwidth=1e9,
            )


class TestSummitSystem:
    def test_node_count(self):
        assert summit().node_count == 4608

    def test_total_nodes_includes_high_mem(self):
        assert summit().total_nodes == 4608 + 54
        assert summit(include_high_mem=False).total_nodes == 4608

    def test_over_3_ai_exaops(self):
        # Summit "over 3 AI-ExaOps mixed precision peak performance"
        assert summit().peak_flops(Precision.MIXED) > 3e18

    def test_gpu_count(self):
        assert summit(include_high_mem=False).total_gpus == 4608 * 6

    def test_injection_bandwidth_25_gbs(self):
        assert summit().interconnect.total_bandwidth == 25e9

    def test_nvme_aggregate_over_27_tbs(self):
        # Section VI-B: "node-local NVMe has aggregate read bandwidth over
        # 27 TB/s"
        assert summit().aggregate_nvme_read_bandwidth(4608) > 27e12

    def test_gpfs_read_2_5_tbs(self):
        assert summit().shared_fs.aggregate_read_bandwidth == 2.5e12

    def test_require_nodes_over_capacity(self):
        with pytest.raises(CapacityError):
            summit().require_nodes(5000)

    def test_require_nodes_zero(self):
        with pytest.raises(ConfigurationError):
            summit().require_nodes(0)

    def test_describe_mentions_name(self):
        assert "Summit" in summit().describe()

    def test_build_small_fabric(self):
        tree = summit().build_fabric(hosts=64)
        assert tree.n_hosts == 64


class TestCompanionClusters:
    def test_rhea_partitions(self):
        r = rhea()
        assert r.node_count == 512
        assert r.total_nodes == 521  # 512 CPU + 9 GPU

    def test_andes_704_nodes(self):
        # "the 704-node Andes cluster", including the nine ex-Rhea GPU nodes
        assert andes().total_nodes == 704

    def test_companions_share_summit_filesystem(self):
        assert rhea().shared_fs is summit().shared_fs
        assert andes().shared_fs is summit().shared_fs

    def test_rhea_cpu_nodes_have_no_gpus(self):
        assert not rhea().node.has_gpus
