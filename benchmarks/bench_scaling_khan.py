"""Section IV-B.4 — Khan et al., gravitational-wave parameter inference.

Paper: "a modified Wavenet architecture is trained with data parallelism
using the LAMB optimizer, achieving 80% scaling efficiency from 8 to 1024
nodes of Summit."
"""

import pytest
from _record import record
from conftest import report

from repro.apps.extreme_scale import get_app
from repro.training.scaling import ScalingStudy


def test_scaling_khan(benchmark):
    app = get_app("khan")

    def run():
        study = ScalingStudy(app.job(8))
        return study.weak_scaling([8, 32, 128, 512, 1024])

    points = benchmark(run)
    peak = points[-1]

    assert peak.efficiency == pytest.approx(0.80, abs=0.03)
    assert app.reported["optimizer"] == "lamb" if "optimizer" in app.reported else True

    record(
        "scaling_khan",
        {"efficiency": peak.efficiency, "nodes": peak.n_nodes},
    )

    print()
    print(ScalingStudy.table(points, "Khan et al. — WaveNet weak scaling (8-node base)"))
    report(
        "Section IV-B.4 paper-vs-measured",
        [
            ("efficiency 8->1024", "80%", f"{peak.efficiency:.1%}"),
            ("nodes", 1024, peak.n_nodes),
        ],
        header=("metric", "paper", "measured"),
    )
