"""The machine registry: frozen :class:`MachineSpec` + named factories.

This module is the single source of truth for every machine-level
calibration number in the library. A :class:`MachineSpec` captures the
whole shape of a leadership system — node count, accelerators per node,
per-GPU FLOPs and HBM, injection rails/bandwidth/latency, the
NVLink-class intra-node fabric, the shared filesystem, the node-local
NVMe burst buffer, and the topology class — and every spec is tagged
with a **provenance class**:

- ``"paper"`` — values stated by the source paper (Summit only);
- ``"estimated"`` — values assembled from vendor datasheets and public
  system documentation (every other machine).

The registry ships four machines:

========================  ==========  ===================================
name                      provenance  sketch
========================  ==========  ===================================
``summit``                paper       4 608 x 6 V100, dual-rail EDR, GPFS
``frontier-like``         estimated   9 408 x 4 MI250X, Slingshot, Lustre
``perlmutter-like``       estimated   1 536 x 4 A100, Slingshot-11, Lustre
``tpu-pod-like``          estimated   256 x 4 TPU-class chips, torus ICI
========================  ==========  ===================================

``summit()`` is **bit-identical** to the historical ``repro.constants``
values (that module is now a thin deprecated re-export of
``SUMMIT.<field>``); the conformance goldens assert this byte-for-byte.

Import discipline: this module imports only :mod:`repro.units`,
:mod:`repro.errors` and the leaf CPU/GPU catalogs, so the legacy
``repro.constants`` shim can resolve through it without creating an
import cycle. The adapters that build :class:`~repro.network.link.LinkSpec`,
:class:`~repro.storage.filesystem.SharedFileSystem`,
:class:`~repro.storage.burst_buffer.BurstBuffer`,
:class:`~repro.machine.node.NodeSpec` and
:class:`~repro.machine.system.System` objects import those layers lazily
at call time.
"""

from __future__ import annotations

import dataclasses
import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro import units
from repro.errors import ConfigurationError
from repro.machine.cpu import (
    AMD_EPYC_7A53,
    AMD_EPYC_7763,
    GENERIC_X86_HOST,
    IBM_POWER9,
    CpuSpec,
)
from repro.machine.gpu import (
    AMD_MI250X,
    NVIDIA_A100,
    NVIDIA_V100,
    TPU_V4_LIKE,
    GpuSpec,
    Precision,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.node import NodeSpec
    from repro.machine.system import System
    from repro.network.link import LinkSpec
    from repro.storage.burst_buffer import BurstBuffer
    from repro.storage.filesystem import SharedFileSystem

__all__ = [
    "MACHINES",
    "MachineSpec",
    "PROVENANCE_CLASSES",
    "TOPOLOGY_CLASSES",
    "frontier_like",
    "get_machine",
    "machine_names",
    "perlmutter_like",
    "resolve_machine",
    "summit",
    "tpu_pod_like",
]

#: Where a spec's numbers come from: the paper itself, or public estimates.
PROVENANCE_CLASSES = ("paper", "estimated")

#: Coarse interconnect topology classes the registry distinguishes.
TOPOLOGY_CLASSES = ("fat-tree", "dragonfly", "torus")


@dataclass(frozen=True)
class MachineSpec:
    """Frozen description of one machine, sufficient to rebuild every
    link/storage/system model the cost layers consume.

    All rates are bytes/s, capacities bytes, latencies seconds, FLOPs
    FLOP/s — the same SI discipline as :mod:`repro.units`.
    """

    # -- identity ------------------------------------------------------------
    key: str
    name: str
    provenance: str  # one of PROVENANCE_CLASSES

    # -- shape ---------------------------------------------------------------
    node_count: int
    node_name: str
    cpus: CpuSpec
    cpu_count: int
    gpus: GpuSpec | None
    gpus_per_node: int
    host_memory_bytes: float

    # -- interconnect --------------------------------------------------------
    injection_rails: int
    injection_rail_bandwidth: float
    injection_latency: float
    intra_node_bandwidth: float
    intra_node_latency: float
    topology: str  # one of TOPOLOGY_CLASSES

    # -- shared filesystem ---------------------------------------------------
    fs_name: str
    fs_aggregate_read_bandwidth: float
    fs_aggregate_write_bandwidth: float
    fs_per_client_bandwidth: float
    fs_capacity_bytes: float

    # -- node-local NVMe burst buffer (all zero when absent) -----------------
    nvme_capacity_bytes: float = 0.0
    nvme_read_bandwidth: float = 0.0
    nvme_write_bandwidth: float = 0.0

    # -- fabric shape for on-demand topology instantiation -------------------
    fabric_levels: int = 3
    fabric_radix: int = 36

    node_tags: frozenset = frozenset({"gpu"})

    def __post_init__(self) -> None:
        if self.provenance not in PROVENANCE_CLASSES:
            raise ConfigurationError(
                f"{self.key}: provenance {self.provenance!r} not in "
                f"{PROVENANCE_CLASSES}"
            )
        if self.topology not in TOPOLOGY_CLASSES:
            raise ConfigurationError(
                f"{self.key}: topology {self.topology!r} not in "
                f"{TOPOLOGY_CLASSES}"
            )
        if self.node_count < 1:
            raise ConfigurationError(f"{self.key}: need at least one node")
        if self.gpus_per_node < 0:
            raise ConfigurationError(f"{self.key}: negative gpus_per_node")
        if (self.gpus is None) != (self.gpus_per_node == 0):
            raise ConfigurationError(
                f"{self.key}: gpus and gpus_per_node must agree"
            )
        if self.cpu_count < 1:
            raise ConfigurationError(f"{self.key}: need at least one socket")
        if self.host_memory_bytes <= 0:
            raise ConfigurationError(f"{self.key}: host memory must be positive")
        if self.injection_rails < 1:
            raise ConfigurationError(f"{self.key}: injection rails must be >= 1")
        for field_name in (
            "injection_rail_bandwidth",
            "intra_node_bandwidth",
            "fs_aggregate_read_bandwidth",
            "fs_aggregate_write_bandwidth",
            "fs_per_client_bandwidth",
            "fs_capacity_bytes",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(
                    f"{self.key}: {field_name} must be positive"
                )
        for field_name in ("injection_latency", "intra_node_latency"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(
                    f"{self.key}: {field_name} must be non-negative"
                )
        nvme = (
            self.nvme_capacity_bytes,
            self.nvme_read_bandwidth,
            self.nvme_write_bandwidth,
        )
        if any(v < 0 for v in nvme):
            raise ConfigurationError(f"{self.key}: negative NVMe figure")
        if any(v > 0 for v in nvme) and not all(v > 0 for v in nvme):
            raise ConfigurationError(
                f"{self.key}: NVMe capacity and bandwidths must all be set "
                "or all be zero"
            )
        if self.fabric_levels < 1 or self.fabric_radix < 2:
            raise ConfigurationError(f"{self.key}: malformed fabric shape")

    # -- derived scalars ------------------------------------------------------

    @property
    def injection_bandwidth(self) -> float:
        """Aggregate per-node injection bytes/s across all rails."""
        return self.injection_rails * self.injection_rail_bandwidth

    @property
    def algorithmic_bandwidth(self) -> float:
        """Ring-allreduce algorithmic bandwidth: half the injection rate
        (the Section VI-B closed form generalised to any machine)."""
        return self.injection_bandwidth / 2.0

    @property
    def has_nvme(self) -> bool:
        return self.nvme_capacity_bytes > 0

    @property
    def aggregate_nvme_read_bandwidth(self) -> float:
        """Fleet-wide node-local read bytes/s (0 when the machine has no
        burst buffer): per-node rate x node count."""
        return self.nvme_read_bandwidth * self.node_count

    @property
    def hbm_bytes_per_node(self) -> float:
        if self.gpus is None:
            return 0.0
        return self.gpus_per_node * self.gpus.memory_bytes

    def gpu_peak_flops(self, precision: Precision = Precision.MIXED) -> float:
        """Per-accelerator peak at ``precision`` (0 for CPU-only machines)."""
        if self.gpus is None:
            return 0.0
        return self.gpus.peak(precision)

    def peak_flops(self, precision: Precision = Precision.MIXED) -> float:
        """Main-partition peak FLOP/s at ``precision``."""
        return self.node_count * self.node().peak_flops(precision)

    # -- adapters into the link/storage/machine layers ------------------------

    @property
    def interconnect(self) -> "LinkSpec":
        """Per-node injection link (alpha-beta model, rails aggregate)."""
        from repro.network.link import LinkSpec

        return LinkSpec(
            latency=self.injection_latency,
            bandwidth=self.injection_rail_bandwidth,
            rails=self.injection_rails,
        )

    @property
    def intra_node_link(self) -> "LinkSpec":
        """NVLink-class link between accelerators inside a node."""
        from repro.network.link import LinkSpec

        return LinkSpec(
            latency=self.intra_node_latency,
            bandwidth=self.intra_node_bandwidth,
        )

    # cached (writes to __dict__, legal on a frozen dataclass) so that every
    # consumer of one spec shares one filesystem object — rhea()/andes()
    # mount *the* Summit GPFS instance, not an equal copy
    @functools.cached_property
    def shared_fs(self) -> "SharedFileSystem":
        from repro.storage.filesystem import SharedFileSystem

        return SharedFileSystem(
            name=self.fs_name,
            aggregate_read_bandwidth=self.fs_aggregate_read_bandwidth,
            aggregate_write_bandwidth=self.fs_aggregate_write_bandwidth,
            per_client_read_bandwidth=self.fs_per_client_bandwidth,
            capacity_bytes=self.fs_capacity_bytes,
        )

    @property
    def nvme(self) -> "BurstBuffer | None":
        if not self.has_nvme:
            return None
        from repro.storage.burst_buffer import BurstBuffer

        return BurstBuffer(
            capacity_bytes=self.nvme_capacity_bytes,
            read_bandwidth=self.nvme_read_bandwidth,
            write_bandwidth=self.nvme_write_bandwidth,
        )

    def node(self) -> "NodeSpec":
        """The main-partition node built from this spec's numbers."""
        from repro.machine.node import NodeSpec

        return NodeSpec(
            name=self.node_name,
            cpus=self.cpus,
            cpu_count=self.cpu_count,
            gpus=self.gpus,
            gpu_count=self.gpus_per_node,
            host_memory_bytes=self.host_memory_bytes,
            nvme_bytes=self.nvme_capacity_bytes,
            nvme_read_bandwidth=self.nvme_read_bandwidth,
            nvme_write_bandwidth=self.nvme_write_bandwidth,
            injection_bandwidth=self.injection_bandwidth,
            tags=self.node_tags,
        )

    def system(
        self,
        extra_partitions: tuple = (),
    ) -> "System":
        """A :class:`~repro.machine.system.System` over this spec's main
        partition (plus any ``extra_partitions``)."""
        from repro.machine.system import System

        return System(
            name=self.name,
            node=self.node(),
            node_count=self.node_count,
            interconnect=self.interconnect,
            shared_fs=self.shared_fs,
            extra_partitions=extra_partitions,
            fabric_levels=self.fabric_levels,
            fabric_radix=self.fabric_radix,
            intra_node_link=self.intra_node_link,
        )

    # -- reporting ------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-able flat record: every field plus the derived aggregates."""
        out = dataclasses.asdict(self)
        out["cpus"] = self.cpus.name
        out["gpus"] = self.gpus.name if self.gpus is not None else None
        out["node_tags"] = sorted(self.node_tags)
        out["injection_bandwidth"] = self.injection_bandwidth
        out["algorithmic_bandwidth"] = self.algorithmic_bandwidth
        out["aggregate_nvme_read_bandwidth"] = (
            self.aggregate_nvme_read_bandwidth
        )
        out["peak_flops_mixed"] = self.peak_flops(Precision.MIXED)
        return out

    def describe(self) -> str:
        """Multi-line human-readable summary, provenance tagged."""
        gpu = (
            f"{self.gpus_per_node} x {self.gpus.name}"
            if self.gpus is not None
            else "CPU-only"
        )
        lines = [
            f"{self.name} [{self.key}] — provenance: {self.provenance}",
            f"  nodes        {self.node_count} x {self.node_name} ({gpu})",
            f"  peak (mixed) {units.format_flops(self.peak_flops())}",
            f"  injection    {self.injection_rails} x "
            f"{units.format_rate(self.injection_rail_bandwidth)} = "
            f"{units.format_rate(self.injection_bandwidth)}, "
            f"{units.format_time(self.injection_latency)} latency "
            f"({self.topology})",
            f"  intra-node   {units.format_rate(self.intra_node_bandwidth)}, "
            f"{units.format_time(self.intra_node_latency)} latency",
            f"  shared FS    {self.fs_name}: read "
            f"{units.format_rate(self.fs_aggregate_read_bandwidth)}, "
            f"{units.format_bytes(self.fs_capacity_bytes)}",
        ]
        if self.has_nvme:
            lines.append(
                f"  node NVMe    {units.format_bytes(self.nvme_capacity_bytes)}"
                f" at {units.format_rate(self.nvme_read_bandwidth)} read "
                f"(aggregate "
                f"{units.format_rate(self.aggregate_nvme_read_bandwidth)})"
            )
        else:
            lines.append("  node NVMe    none")
        return "\n".join(lines)


# -- the registry --------------------------------------------------------------

#: Summit, bit-identical to the historical ``repro.constants`` values. The
#: expressions below are the *same float expressions* the constants module
#: used, so every derived number is byte-for-byte unchanged.
SUMMIT = MachineSpec(
    key="summit",
    name="Summit",
    provenance="paper",
    node_count=4608,
    node_name="IBM AC922 (Summit)",
    cpus=IBM_POWER9,
    cpu_count=2,
    gpus=NVIDIA_V100,
    gpus_per_node=6,
    host_memory_bytes=512 * units.GIB,
    injection_rails=2,
    injection_rail_bandwidth=12.5 * units.GB,
    injection_latency=1.0 * units.US,
    intra_node_bandwidth=50 * units.GB,
    intra_node_latency=0.7 * units.US,
    topology="fat-tree",
    fs_name="Alpine (GPFS)",
    fs_aggregate_read_bandwidth=2.5 * units.TB,
    fs_aggregate_write_bandwidth=2.5 * units.TB,
    fs_per_client_bandwidth=12.5 * units.GB,
    fs_capacity_bytes=250 * units.PB,
    nvme_capacity_bytes=1.6 * units.TB,
    nvme_read_bandwidth=6.0 * units.GB,
    nvme_write_bandwidth=2.1 * units.GB,
    fabric_levels=3,
    fabric_radix=36,
    node_tags=frozenset({"gpu", "nvme"}),
)

#: Frontier-class machine: MI250X nodes on a Slingshot dragonfly with the
#: Orion Lustre filesystem and per-node NVMe. Vendor/system-doc estimates.
FRONTIER_LIKE = MachineSpec(
    key="frontier-like",
    name="Frontier-like",
    provenance="estimated",
    node_count=9408,
    node_name="HPE Cray EX235a",
    cpus=AMD_EPYC_7A53,
    cpu_count=1,
    gpus=AMD_MI250X,
    gpus_per_node=4,
    host_memory_bytes=512 * units.GIB,
    injection_rails=4,
    injection_rail_bandwidth=25 * units.GB,
    injection_latency=2.0 * units.US,
    intra_node_bandwidth=100 * units.GB,
    intra_node_latency=1.0 * units.US,
    topology="dragonfly",
    fs_name="Orion (Lustre)",
    fs_aggregate_read_bandwidth=10 * units.TB,
    fs_aggregate_write_bandwidth=5 * units.TB,
    fs_per_client_bandwidth=25 * units.GB,
    fs_capacity_bytes=700 * units.PB,
    nvme_capacity_bytes=3.84 * units.TB,
    nvme_read_bandwidth=8.0 * units.GB,
    nvme_write_bandwidth=4.0 * units.GB,
    fabric_levels=2,
    fabric_radix=64,
    node_tags=frozenset({"gpu", "nvme"}),
)

#: Perlmutter-class machine: A100 GPU nodes on Slingshot-11; no node-local
#: NVMe on the GPU partition. Vendor/system-doc estimates.
PERLMUTTER_LIKE = MachineSpec(
    key="perlmutter-like",
    name="Perlmutter-like",
    provenance="estimated",
    node_count=1536,
    node_name="HPE Cray EX A100 node",
    cpus=AMD_EPYC_7763,
    cpu_count=1,
    gpus=NVIDIA_A100,
    gpus_per_node=4,
    host_memory_bytes=256 * units.GIB,
    injection_rails=2,
    injection_rail_bandwidth=25 * units.GB,
    injection_latency=1.5 * units.US,
    intra_node_bandwidth=100 * units.GB,
    intra_node_latency=0.7 * units.US,
    topology="dragonfly",
    fs_name="Perlmutter scratch (Lustre)",
    fs_aggregate_read_bandwidth=5 * units.TB,
    fs_aggregate_write_bandwidth=5 * units.TB,
    fs_per_client_bandwidth=20 * units.GB,
    fs_capacity_bytes=35 * units.PB,
    fabric_levels=2,
    fabric_radix=64,
    node_tags=frozenset({"gpu"}),
)

#: Abstract TPU-pod-class machine: four TPU-class chips per host on a torus
#: inter-chip interconnect, backed by an object store. Deliberately coarse.
TPU_POD_LIKE = MachineSpec(
    key="tpu-pod-like",
    name="TPU-pod-like",
    provenance="estimated",
    node_count=256,
    node_name="TPU host board",
    cpus=GENERIC_X86_HOST,
    cpu_count=1,
    gpus=TPU_V4_LIKE,
    gpus_per_node=4,
    host_memory_bytes=512 * units.GIB,
    injection_rails=1,
    injection_rail_bandwidth=100 * units.GB,
    injection_latency=1.0 * units.US,
    intra_node_bandwidth=100 * units.GB,
    intra_node_latency=0.5 * units.US,
    topology="torus",
    fs_name="object store",
    fs_aggregate_read_bandwidth=1 * units.TB,
    fs_aggregate_write_bandwidth=1 * units.TB,
    fs_per_client_bandwidth=5 * units.GB,
    fs_capacity_bytes=100 * units.PB,
    fabric_levels=1,
    fabric_radix=16,
    node_tags=frozenset({"gpu"}),
)


def summit() -> MachineSpec:
    """The paper's machine — the default everywhere, bit-identical to the
    historical ``repro.constants`` numbers."""
    return SUMMIT


def frontier_like() -> MachineSpec:
    return FRONTIER_LIKE


def perlmutter_like() -> MachineSpec:
    return PERLMUTTER_LIKE


def tpu_pod_like() -> MachineSpec:
    return TPU_POD_LIKE


#: Name -> factory. Keys are what ``--machine`` accepts on the CLI.
MACHINES: dict[str, Callable[[], MachineSpec]] = {
    "summit": summit,
    "frontier-like": frontier_like,
    "perlmutter-like": perlmutter_like,
    "tpu-pod-like": tpu_pod_like,
}


def machine_names() -> tuple[str, ...]:
    """Registry names in deterministic (sorted) order."""
    return tuple(sorted(MACHINES))


def get_machine(name: str) -> MachineSpec:
    """Look a machine up by registry name.

    >>> get_machine("summit").provenance
    'paper'
    >>> get_machine("frontier-like").provenance
    'estimated'
    """
    try:
        return MACHINES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; choose from {', '.join(machine_names())}"
        ) from None


def resolve_machine(machine: "MachineSpec | str | None") -> MachineSpec:
    """Normalise a machine argument: a spec passes through, a string is a
    registry lookup, ``None`` means Summit."""
    if machine is None:
        return SUMMIT
    if isinstance(machine, MachineSpec):
        return machine
    return get_machine(machine)
