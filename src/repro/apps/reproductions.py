"""Map from every AI/ML Gordon Bell finalist to its reproduction in this
library — documentation as code, kept honest by the test suite.

Each entry names the finalist, the motif, and the concrete module(s) that
reproduce the *pattern* of its AI usage at laptop scale (the full
applications are paper-scale systems; see DESIGN.md's substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module

from repro.errors import ConfigurationError
from repro.apps.registry import GORDON_BELL_FINALISTS


@dataclass(frozen=True)
class Reproduction:
    """How one finalist's AI pattern is reproduced here."""

    finalist: str
    modules: tuple[str, ...]  # importable module paths
    mechanism: str  # one-line description of the reproduced pattern


GB_REPRODUCTIONS: tuple[Reproduction, ...] = (
    Reproduction(
        "Ichimura et al.",
        ("repro.science.solver",),
        "learned deflation space accelerating a CG solver 2-3x, answer "
        "verified by the residual",
    ),
    Reproduction(
        "Patton et al.",
        ("repro.workflows.case_nas",),
        "evolutionary hyperparameter search over real network trainings "
        "with machine-level parallel evaluation",
    ),
    Reproduction(
        "Kurth et al.",
        ("repro.apps.extreme_scale", "repro.training"),
        "calibrated full-Summit weak scaling: 1.13 EF / 90.7 % efficiency",
    ),
    Reproduction(
        "Jia et al.",
        ("repro.science.potentials", "repro.science.md"),
        "ML pair potential trained on reference data, running MD with the "
        "reference structure reproduced",
    ),
    Reproduction(
        "Casalino et al.",
        ("repro.workflows.steering",),
        "autoencoder-scored outlier restarts steering a simulation ensemble",
    ),
    Reproduction(
        "Glaser et al.",
        ("repro.ml.forest", "repro.workflows.case_drug"),
        "random-forest affinity surrogate ranking a compound library",
    ),
    Reproduction(
        "Nguyen-Cong et al.",
        ("repro.science.potentials", "repro.science.md"),
        "ML potential substituted into the MD engine (SNAP/DeePMD pattern)",
    ),
    Reproduction(
        "Blanchard et al.",
        ("repro.apps.extreme_scale", "repro.ml.ga", "repro.workflows.case_drug"),
        "LAMB + gradient accumulation to a 5.8M batch (603 PF), plus GA "
        "search against a learned scoring function",
    ),
    Reproduction(
        "Amaro et al.",
        ("repro.workflows.steering", "repro.workflows.case_analysis"),
        "DeepDriveMD steering plus latent-space trajectory analysis",
    ),
    Reproduction(
        "Trifan et al.",
        ("repro.workflows.case_biology", "repro.workflows.dag"),
        "multiscale coupling via learned latents, orchestrated across four "
        "facilities",
    ),
)


def verify_coverage() -> dict[str, bool]:
    """Check every AI finalist is mapped and every mapped module imports."""
    ai_finalists = {f.name for f in GORDON_BELL_FINALISTS if f.uses_ai}
    mapped = {r.finalist for r in GB_REPRODUCTIONS}
    out = {"all_ai_finalists_mapped": ai_finalists == mapped}
    for repro in GB_REPRODUCTIONS:
        for module in repro.modules:
            try:
                import_module(module)
                out[module] = True
            except ImportError:
                out[module] = False
    return out


def reproduction_for(finalist: str) -> Reproduction:
    for repro in GB_REPRODUCTIONS:
        if repro.finalist == finalist:
            return repro
    raise ConfigurationError(f"no reproduction mapped for {finalist!r}")
