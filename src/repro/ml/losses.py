"""Loss functions returning (value, gradient-w.r.t.-prediction)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    if pred.shape != target.shape:
        raise ConfigurationError(f"shape mismatch {pred.shape} vs {target.shape}")
    diff = pred - target
    n = pred.size
    return float(np.mean(diff * diff)), 2.0 * diff / n


def binary_cross_entropy(
    pred: np.ndarray, target: np.ndarray, eps: float = 1e-12
) -> tuple[float, np.ndarray]:
    """BCE on probabilities in (0, 1)."""
    if pred.shape != target.shape:
        raise ConfigurationError(f"shape mismatch {pred.shape} vs {target.shape}")
    p = np.clip(pred, eps, 1.0 - eps)
    value = float(-np.mean(target * np.log(p) + (1 - target) * np.log(1 - p)))
    grad = (p - target) / (p * (1 - p)) / pred.size
    return value, grad


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Cross entropy with integer ``labels``; gradient w.r.t. logits.

    ``logits``: (batch, classes); ``labels``: (batch,) ints.
    """
    if logits.ndim != 2:
        raise ConfigurationError("logits must be 2-D (batch, classes)")
    if labels.shape != (logits.shape[0],):
        raise ConfigurationError("labels must be (batch,)")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    nll = -np.log(np.clip(probs[np.arange(n), labels], 1e-12, None))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(nll.mean()), grad / n


LOSSES = {"mse": mse, "bce": binary_cross_entropy}
