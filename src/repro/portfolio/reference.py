"""Paper-reported survey statistics, with per-value provenance.

Two provenance classes:

- ``stated`` — the number appears in the paper's text or tables verbatim
  (e.g. "147 INCITE project-years", "20% in 2019", "about 1/3 active").
- ``estimated`` — the paper shows the value only graphically (Figures 1-6
  are images) or implies it qualitatively; we commit to a concrete value
  consistent with every stated constraint and the narrative (e.g. Biology
  uses no grid Submodels; Engineering x Submodel is the most prominent
  cell; the top five motifs cover over 3/4 of usage).

The synthetic portfolio generator consumes these tables; the analytics
recompute them from generated records; the benchmarks print paper-vs-
measured for each figure. All cross-table consistency (row/column sums,
cohort totals) is enforced by the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    GPFS_AGGREGATE_READ_BANDWIDTH,
    SUMMIT_ALGORITHMIC_BANDWIDTH,
    SUMMIT_INJECTION_BANDWIDTH,
)
from repro.portfolio.taxonomy import AdoptionStatus, Domain, MLMethod, Motif, Program

# ---------------------------------------------------------------------------
# Cohort sizes (Section III intro — all `stated` totals):
#   662 project-years: INCITE 147, ALCC 72, DD 352, COVID non-DD 12, ECP 62,
#   Gordon Bell 17. Figures 1-5 exclude Gordon Bell (645 project-years).
# Per-year splits within a program are `estimated`.
# Each entry: (program, year) -> (total, active, inactive).
# ---------------------------------------------------------------------------

PROGRAM_YEAR_TABLE: dict[tuple[Program, int], tuple[int, int, int]] = {
    # INCITE: 147 total (stated); 2019 active 20% (stated);
    # 2022 active ~31%, inactive ~28% (stated in conclusions).
    (Program.INCITE, 2019): (35, 7, 8),
    (Program.INCITE, 2020): (36, 9, 9),
    (Program.INCITE, 2021): (37, 10, 9),
    (Program.INCITE, 2022): (39, 12, 11),
    # ALCC: 72 total (stated); "large subset of a smaller number of
    # projects" used AI in 2019-20 (stated qualitatively).
    (Program.ALCC, 2019): (20, 9, 1),
    (Program.ALCC, 2020): (25, 8, 2),
    (Program.ALCC, 2021): (27, 9, 2),
    # DD: 352 total (stated); "very large number of projects, many using
    # AI/ML" (stated qualitatively).
    (Program.DD, 2019): (110, 38, 2),
    (Program.DD, 2020): (120, 43, 3),
    (Program.DD, 2021): (122, 45, 3),
    # COVID non-DD: 12 total (stated); "use AI/ML heavily" (stated).
    (Program.COVID, 2020): (12, 9, 0),
    # ECP: 62 total (stated); "use AI/ML less" (stated).
    (Program.ECP, 2020): (62, 9, 2),
}

#: Figure 1 targets: "1/3 ... actively used" and "another 8% indirect use"
#: (both stated). Derived from the table above: 208/645 and 52/645.
FIG1_EXPECTED = {
    AdoptionStatus.ACTIVE: 208 / 645,
    AdoptionStatus.INACTIVE: 52 / 645,
    AdoptionStatus.NONE: 385 / 645,
}

# ---------------------------------------------------------------------------
# Figure 4: domain totals and AI adoption per domain over the 645
# project-years. Totals per domain are `estimated`; the ordering constraints
# are stated: Biology, Computer Science and Materials are the top AI users;
# Engineering / Earth Science / Fusion have notable `inactive` counts.
# Each entry: domain -> (total, active, inactive).
# ---------------------------------------------------------------------------

DOMAIN_TABLE: dict[Domain, tuple[int, int, int]] = {
    Domain.BIOLOGY: (96, 52, 4),
    Domain.CHEMISTRY: (39, 3, 2),
    Domain.COMPUTER_SCIENCE: (62, 50, 2),
    Domain.EARTH_SCIENCE: (56, 14, 9),
    Domain.ENGINEERING: (89, 22, 14),
    Domain.FUSION_PLASMA: (54, 13, 8),
    Domain.MATERIALS: (101, 40, 6),
    Domain.NUCLEAR_ENERGY: (30, 2, 1),
    Domain.PHYSICS: (118, 12, 6),
}

#: Figure 3: ML-method split among AI (active + inactive) projects.
#: "DL/NN methods are much more prevalent than others" (stated); the split
#: is `estimated`.
METHOD_SHARES: dict[MLMethod, float] = {
    MLMethod.DEEP_LEARNING: 0.60,
    MLMethod.OTHER: 0.25,
    MLMethod.UNDETERMINED: 0.15,
}

# ---------------------------------------------------------------------------
# Figures 5-6 basis: AI projects in INCITE + ALCC + ECP only (stated
# methodology). From PROGRAM_YEAR_TABLE: INCITE 75 AI + ALCC 31 + ECP 11
# = 117 project-years.
# ---------------------------------------------------------------------------

FIG56_PROGRAMS = (Program.INCITE, Program.ALCC, Program.ECP)
FIG56_COHORT = 117

#: Figure 5 motif counts over the 117-project cohort. Stated constraints:
#: Submodel is the top motif; Submodel + Classification + Analysis +
#: Surrogate + MD Potentials account for over 3/4 of usage. Counts are
#: `estimated` subject to those constraints.
MOTIF_COUNTS: dict[Motif, int] = {
    Motif.SUBMODEL: 26,
    Motif.CLASSIFICATION: 19,
    Motif.ANALYSIS: 16,
    Motif.SURROGATE_MODEL: 15,
    Motif.MD_POTENTIAL: 14,
    Motif.STEERING: 7,
    Motif.ML_MODSIM_LOOP: 6,
    Motif.MATH_CS_ALGORITHM: 5,
    Motif.VARIOUS: 5,
    Motif.UNDETERMINED: 3,
    Motif.FAULT_DETECTION: 1,
}

#: Figure 6 domain totals for the same cohort (`estimated`).
FIG6_DOMAIN_TOTALS: dict[Domain, int] = {
    Domain.BIOLOGY: 25,
    Domain.CHEMISTRY: 3,
    Domain.COMPUTER_SCIENCE: 23,
    Domain.EARTH_SCIENCE: 10,
    Domain.ENGINEERING: 16,
    Domain.FUSION_PLASMA: 9,
    Domain.MATERIALS: 21,
    Domain.NUCLEAR_ENERGY: 2,
    Domain.PHYSICS: 8,
}

_DOMAIN_ORDER = (
    Domain.BIOLOGY,
    Domain.CHEMISTRY,
    Domain.COMPUTER_SCIENCE,
    Domain.EARTH_SCIENCE,
    Domain.ENGINEERING,
    Domain.FUSION_PLASMA,
    Domain.MATERIALS,
    Domain.NUCLEAR_ENERGY,
    Domain.PHYSICS,
)

#: Figure 6: motif x domain counts. `estimated`, honouring every stated
#: narrative constraint: Engineering x Submodel is the single most prominent
#: cell; Earth Science also uses Submodels; Biology uses NO Submodels (its
#: at-scale ML is MD Potentials / Steering / Classification); Materials is
#: the heavy MD-Potentials user, Fusion/Plasma a lighter one; Computer
#: Science is Classification-heavy with NO Math/CS-Algorithm entries; the
#: Various umbrella (CAAR/ESP/NESAP readiness) sits in Computer Science.
#: Rows and columns sum exactly to MOTIF_COUNTS / FIG6_DOMAIN_TOTALS (tested).
MOTIF_DOMAIN_MATRIX: dict[Motif, dict[Domain, int]] = {
    motif: dict(zip(_DOMAIN_ORDER, row))
    for motif, row in {
        Motif.SUBMODEL: (0, 1, 0, 3, 13, 1, 3, 1, 4),
        Motif.CLASSIFICATION: (6, 0, 12, 0, 0, 0, 0, 0, 1),
        Motif.ANALYSIS: (4, 1, 3, 3, 0, 2, 2, 0, 1),
        Motif.SURROGATE_MODEL: (3, 1, 2, 2, 2, 3, 1, 1, 0),
        Motif.MD_POTENTIAL: (2, 0, 0, 0, 0, 3, 9, 0, 0),
        Motif.STEERING: (4, 0, 0, 0, 0, 0, 3, 0, 0),
        Motif.ML_MODSIM_LOOP: (3, 0, 0, 1, 1, 0, 1, 0, 0),
        Motif.MATH_CS_ALGORITHM: (2, 0, 0, 1, 0, 0, 1, 0, 1),
        Motif.FAULT_DETECTION: (0, 0, 0, 0, 0, 0, 1, 0, 0),
        Motif.VARIOUS: (0, 0, 5, 0, 0, 0, 0, 0, 0),
        Motif.UNDETERMINED: (1, 0, 1, 0, 0, 0, 0, 0, 1),
    }.items()
}

# ---------------------------------------------------------------------------
# Table III: Gordon Bell finalist counts (all `stated`).
# (year, category) -> (summit_finalists, summit_ai_ml_finalists)
# ---------------------------------------------------------------------------

GORDON_BELL_TABLE: dict[tuple[int, str], tuple[int, int]] = {
    (2018, "std"): (5, 3),
    (2019, "std"): (2, 0),
    (2020, "std"): (4, 1),
    (2020, "covid"): (2, 2),
    (2021, "std"): (1, 1),
    (2021, "covid"): (3, 3),
}

# ---------------------------------------------------------------------------
# Section IV-B extreme-scale results (all `stated`).
# ---------------------------------------------------------------------------

EXTREME_SCALE_CLAIMS = {
    "kurth": {
        "nodes": 4560,
        "peak_flops": 1.13e18,
        "efficiency": 0.907,
        "optimizer": "larc",
    },
    "yang": {
        "nodes": 4584,
        "peak_flops": 1.2e18,
        "efficiency": 0.93,
        "optimizer": "adam",
    },
    "laanait": {
        "nodes": 4600,
        "peak_flops": 2.15e18,
        "global_batch": 27600,
        "optimizer": "lars",
    },
    "khan": {
        "nodes": 1024,
        "baseline_nodes": 8,
        "efficiency": 0.80,
        "optimizer": "lamb",
    },
    "blanchard": {
        "nodes": 4032,
        "peak_flops": 603e15,
        "efficiency_with_io": 0.68,
        "efficiency_without_io": 0.833,
        "max_global_batch": 5.8e6,
        "optimizer": "lamb",
    },
}

# ---------------------------------------------------------------------------
# Section VI-B analytic claims (all `stated`).
# ---------------------------------------------------------------------------

SECTION_6B_CLAIMS = {
    "resnet50_read_requirement": 20e12,  # bytes/s aggregate, full Summit
    "gpfs_read_bandwidth": GPFS_AGGREGATE_READ_BANDWIDTH,
    "nvme_aggregate_read_bandwidth": 27e12,  # the paper says "over 27 TB/s";
    # the calibrated aggregate (constants.NVME_AGGREGATE_READ_BANDWIDTH)
    # is 6 GB/s x 4608 = 27.6 TB/s
    "network_bandwidth": SUMMIT_INJECTION_BANDWIDTH,
    "allreduce_algorithmic_bandwidth": SUMMIT_ALGORITHMIC_BANDWIDTH,
    "resnet50_allreduce_message": 100e6,  # "about 100MB"
    "bert_large_allreduce_message": 1.4e9,
    "resnet50_allreduce_time": 8e-3,  # "roughly 8 ms"
    "bert_large_allreduce_time": 110e-3,  # "roughly ... 110 ms"
}


def consistency_report() -> dict[str, bool]:
    """Cross-table consistency checks (also exercised by the test suite)."""
    totals = {}
    for program in Program:
        if program is Program.GORDON_BELL:
            continue
        totals[program] = sum(
            t for (p, _), (t, _, _) in PROGRAM_YEAR_TABLE.items() if p is program
        )
    active = sum(a for _, a, _ in PROGRAM_YEAR_TABLE.values())
    inactive = sum(i for _, _, i in PROGRAM_YEAR_TABLE.values())
    domain_total = sum(t for t, _, _ in DOMAIN_TABLE.values())
    domain_active = sum(a for _, a, _ in DOMAIN_TABLE.values())
    domain_inactive = sum(i for _, _, i in DOMAIN_TABLE.values())
    matrix = np.array(
        [[MOTIF_DOMAIN_MATRIX[m][d] for d in _DOMAIN_ORDER] for m in MOTIF_COUNTS]
    )
    return {
        "incite_147": totals[Program.INCITE] == 147,
        "alcc_72": totals[Program.ALCC] == 72,
        "dd_352": totals[Program.DD] == 352,
        "covid_12": totals[Program.COVID] == 12,
        "ecp_62": totals[Program.ECP] == 62,
        "study_total_645": sum(totals.values()) == 645,
        "active_matches_domains": active == domain_active,
        "inactive_matches_domains": inactive == domain_inactive,
        "domain_total_645": domain_total == 645,
        "fig56_cohort_117": sum(MOTIF_COUNTS.values()) == FIG56_COHORT,
        "matrix_rows_match": all(
            int(matrix[i].sum()) == count
            for i, count in enumerate(MOTIF_COUNTS.values())
        ),
        "matrix_cols_match": all(
            int(matrix[:, j].sum()) == FIG6_DOMAIN_TOTALS[d]
            for j, d in enumerate(_DOMAIN_ORDER)
        ),
    }
