"""In-process tests for the campaign server: leases, heartbeats, requeue,
backpressure shed-load, cache memoization, drain, and the client's typed
error surface."""

import contextlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.errors import LeaseExpired, Saturated, ServiceError
from repro.exec.cache import CACHE_DIR_ENV
from repro.resilience.retry import RetryPolicy
from repro.service import (
    CampaignSpec,
    JobSpec,
    ServiceClient,
    chaos_campaign,
    expected_results,
    run_worker,
    serve,
)

FAST = dict(
    lease_timeout_s=0.4,
    heartbeat_interval_s=0.1,
    max_attempts=4,
    backoff_base_s=0.01,
    backoff_max_s=0.05,
)

TEST_POLICY = RetryPolicy(max_attempts=4, backoff_base=0.05,
                          backoff_factor=2.0, backoff_max=0.5,
                          jitter_fraction=0.0, deadline_s=10.0)


def _jobs(n, handler="quadrature", **params):
    return tuple(
        JobSpec(f"j{i}", handler, dict(params) or {"n_samples": 16},
                seed=i)
        for i in range(n)
    )


@contextlib.contextmanager
def running_server(spec, journal_dir=None, cache_dir=None):
    tmp = Path(tempfile.mkdtemp(prefix="rsvc-"))
    sock = tmp / "s"
    jdir = Path(journal_dir) if journal_dir else tmp / "journal"
    old_cache = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(cache_dir or tmp / "cache")
    thread = threading.Thread(
        target=serve, args=(spec, jdir, sock),
        kwargs=dict(sweep_interval_s=0.05), daemon=True,
    )
    thread.start()
    client = ServiceClient(sock, session="test", policy=TEST_POLICY)
    client.wait_ready(timeout_s=20.0)
    try:
        yield client
    finally:
        with contextlib.suppress(Exception):
            client.drain()
        thread.join(timeout=10)
        if old_cache is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = old_cache
        assert not thread.is_alive(), "server failed to drain"


class TestHappyPath:
    def test_full_campaign_round_trip(self):
        spec = CampaignSpec(name="t", jobs=_jobs(4), **FAST)
        with running_server(spec) as client:
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0", max_jobs=2), daemon=True,
            )
            worker.start()
            status = client.wait_finished(timeout_s=20.0)
            assert status["counts"]["done"] == 4
            assert status["failed_jobs"] == []
            assert client.results() == expected_results(spec)
            worker.join(timeout=10)

    def test_ingest_is_idempotent(self):
        spec = CampaignSpec(name="t", jobs=_jobs(3), **FAST)
        with running_server(spec) as client:
            response = client.submit_spec(spec)
            assert response == {"ingested": 0, "known": 3, "ok": True}

    def test_status_reports_counts_and_metrics(self):
        spec = CampaignSpec(name="t", jobs=_jobs(2), **FAST)
        with running_server(spec) as client:
            status = client.status()
            assert status["counts"]["pending"] == 2
            assert status["recovered"] is False
            assert status["metrics"]["journal.fsyncs"]["value"] >= 1

    def test_acquire_marks_lease_and_attempt(self):
        spec = CampaignSpec(name="t", jobs=_jobs(2), **FAST)
        with running_server(spec) as client:
            leases = client.acquire(max_jobs=1)
            assert len(leases) == 1
            assert leases[0]["attempt"] == 1
            assert leases[0]["job"]["job_id"] == "j0"
            assert client.status()["counts"]["leased"] == 1


class TestLeases:
    def test_expired_lease_requeues_and_late_complete_rejected(self):
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        with running_server(spec) as client:
            (lease,) = client.acquire()
            job_id = lease["job"]["job_id"]
            time.sleep(spec.lease_timeout_s + 0.3)  # no heartbeats: expire
            status = client.status()
            assert status["total_requeues"] == 1
            assert status["counts"]["pending"] == 1
            with pytest.raises(LeaseExpired):
                client.complete(job_id, {"stale": True})

    def test_heartbeat_keeps_lease_alive(self):
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        with running_server(spec) as client:
            (lease,) = client.acquire()
            job_id = lease["job"]["job_id"]
            deadline = time.time() + spec.lease_timeout_s + 0.5
            while time.time() < deadline:
                client.heartbeat([job_id])
                time.sleep(0.1)
            assert client.status()["total_requeues"] == 0
            assert client.complete(job_id, {"ok": 1})

    def test_requeued_job_completes_under_new_session(self):
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        with running_server(spec) as client:
            client.acquire()
            time.sleep(spec.lease_timeout_s + 0.3)
            other = ServiceClient(client.socket_path, session="other",
                                  policy=TEST_POLICY)
            deadline = time.time() + 5.0
            leases = []
            while not leases and time.time() < deadline:
                leases = other.acquire()
                time.sleep(0.05)
            assert leases and leases[0]["attempt"] == 2
            assert other.complete(leases[0]["job"]["job_id"], {"v": 2})
            status = client.status()
            assert status["counts"]["done"] == 1

    def test_attempts_exhaust_to_failed(self):
        spec = CampaignSpec(
            name="t",
            jobs=(JobSpec("fatal", "chaos:flaky",
                          {"fail_attempts": 99}, seed=0),),
            **{**FAST, "max_attempts": 2},
        )
        with running_server(spec) as client:
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0"), daemon=True,
            )
            worker.start()
            status = client.wait_finished(timeout_s=20.0)
            assert status["counts"]["failed"] == 1
            assert status["failed_jobs"] == ["fatal"]
            assert status["total_attempts"] == 2
            worker.join(timeout=10)

    def test_flaky_job_retries_to_success(self):
        spec = CampaignSpec(
            name="t",
            jobs=(JobSpec("flaky", "chaos:flaky",
                          {"fail_attempts": 2}, seed=0),),
            **FAST,
        )
        with running_server(spec) as client:
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0"), daemon=True,
            )
            worker.start()
            status = client.wait_finished(timeout_s=20.0)
            assert status["counts"]["done"] == 1
            assert status["total_attempts"] == 3
            assert client.results() == {
                "flaky": {"succeeded_on_attempt": 3}
            }
            worker.join(timeout=10)


class TestBackpressure:
    def test_ingest_beyond_bound_sheds_load(self):
        spec = CampaignSpec(name="t", max_pending=5, **FAST)
        with running_server(spec) as client:
            client.submit(_jobs(5))
            extra = [
                JobSpec(f"x{i}", "quadrature", {"n_samples": 8}, seed=i)
                for i in range(3)
            ]
            with pytest.raises(Saturated, match="max_pending"):
                client.request(
                    "ingest", jobs=[j.to_dict() for j in extra],
                    retry_transient=False,
                )
            # nothing was buffered: in-flight stays at the bound
            counts = client.status()["counts"]
            assert counts["pending"] + counts["leased"] == 5

    def test_shed_load_clears_as_jobs_complete(self):
        spec = CampaignSpec(name="t", max_pending=2, **FAST)
        with running_server(spec) as client:
            client.submit(_jobs(2))
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0", idle_exit_s=0.5), daemon=True,
            )
            worker.start()
            client.wait_finished(timeout_s=20.0)
            # capacity freed: the previously-shed jobs now ingest cleanly
            response = client.submit(
                [JobSpec("x0", "quadrature", {"n_samples": 8})]
            )
            assert response["ingested"] == 1
            worker.join(timeout=10)

    def test_client_backoff_retries_saturated(self):
        spec = CampaignSpec(name="t", max_pending=1, **FAST)
        with running_server(spec) as client:
            client.submit(_jobs(1))

            def complete_soon():
                time.sleep(0.3)
                (lease,) = client.acquire()
                client.complete(lease["job"]["job_id"], {"ok": 1})

            threading.Thread(target=complete_soon, daemon=True).start()
            # immediately saturated; the policy-driven backoff retries
            # until the slot frees, so this succeeds without raising
            patient = ServiceClient(
                client.socket_path,
                policy=RetryPolicy(max_attempts=30, backoff_base=0.05,
                                   backoff_factor=1.0, backoff_max=0.05,
                                   jitter_fraction=0.0, deadline_s=15.0),
            )
            response = patient.submit(
                [JobSpec("x0", "quadrature", {"n_samples": 8})]
            )
            assert response["ingested"] == 1


class TestMemoization:
    def test_completed_results_served_from_cache(self, tmp_path):
        jobs = _jobs(3)
        cache_dir = tmp_path / "shared-cache"
        spec_a = CampaignSpec(name="first", jobs=jobs, **FAST)
        with running_server(spec_a, cache_dir=cache_dir) as client:
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0"), daemon=True,
            )
            worker.start()
            client.wait_finished(timeout_s=20.0)
            first = client.results()
            worker.join(timeout=10)
        # same job content, brand-new campaign + journal: no leases needed
        spec_b = CampaignSpec(name="second", jobs=jobs, **FAST)
        with running_server(spec_b, cache_dir=cache_dir) as client:
            status = client.wait_finished(timeout_s=5.0)
            assert status["total_attempts"] == 0
            metrics = status["metrics"]
            assert metrics["service.cache_completions"]["value"] == 3.0
            assert client.results() == first

    def test_chaos_handlers_never_cached(self, tmp_path):
        jobs = (JobSpec("s0", "chaos:sleep", {"seconds": 0.01}),)
        cache_dir = tmp_path / "shared-cache"
        for name in ("first", "second"):
            spec = CampaignSpec(name=name, jobs=jobs, **FAST)
            with running_server(spec, cache_dir=cache_dir) as client:
                worker = threading.Thread(
                    target=run_worker, args=(client.socket_path,),
                    kwargs=dict(session="w0"), daemon=True,
                )
                worker.start()
                status = client.wait_finished(timeout_s=20.0)
                assert status["total_attempts"] == 1  # never cache-completed
                worker.join(timeout=10)


class TestProtocol:
    def test_unknown_op_is_protocol_error(self):
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        with running_server(spec) as client:
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError, match="unknown op"):
                client.request("teleport", retry_transient=False)

    def test_empty_ingest_rejected(self):
        spec = CampaignSpec(name="t", **FAST)
        with running_server(spec) as client:
            from repro.errors import ProtocolError

            with pytest.raises(ProtocolError):
                client.request("ingest", jobs=[], retry_transient=False)

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient(
            "/nonexistent/socket/path",
            policy=RetryPolicy(max_attempts=2, backoff_base=0.01,
                               jitter_fraction=0.0),
        )
        with pytest.raises(ServiceError, match="cannot reach server"):
            client.ping()

    def test_results_are_canonical_json(self):
        spec = CampaignSpec(name="t", jobs=_jobs(2), **FAST)
        with running_server(spec) as client:
            worker = threading.Thread(
                target=run_worker, args=(client.socket_path,),
                kwargs=dict(session="w0"), daemon=True,
            )
            worker.start()
            client.wait_finished(timeout_s=20.0)
            payload = json.dumps(client.results(), sort_keys=True)
            assert payload == json.dumps(expected_results(spec),
                                         sort_keys=True)
            worker.join(timeout=10)


class TestDrain:
    def test_drain_writes_trace_and_removes_socket(self):
        tmp = Path(tempfile.mkdtemp(prefix="rsvc-"))
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        jdir = tmp / "journal"
        with running_server(spec, journal_dir=jdir) as client:
            socket_path = Path(client.socket_path)
        assert not socket_path.exists()
        trace = json.loads((jdir / "service.trace.json").read_text())
        assert trace["traceEvents"]

    def test_drain_journal_ends_with_marker(self):
        tmp = Path(tempfile.mkdtemp(prefix="rsvc-"))
        spec = CampaignSpec(name="t", jobs=_jobs(1), **FAST)
        jdir = tmp / "journal"
        with running_server(spec, journal_dir=jdir):
            pass
        from repro.service import read_journal

        records = read_journal(jdir).records
        assert records[-1]["type"] == "drain"


def test_chaos_campaign_spec_is_deterministic():
    assert chaos_campaign(12, seed=3) == chaos_campaign(12, seed=3)
