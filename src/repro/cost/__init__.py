"""repro.cost — the unified composable cost-model layer.

Every bandwidth/latency/FLOP expression in the repository lives exactly once,
in :mod:`repro.cost.kernels`, and is consumed through two interchangeable
paths: scalar ``evaluate(**config)`` (bit-identical to the original
handwritten formulas) and vectorized ``evaluate_batch`` / :func:`sweep`
(NumPy broadcasting over configuration grids). The training, network,
storage, and analysis layers are all thin adapters over this package.
"""

from repro.cost import kernels
from repro.cost.breakdown import CostBreakdown
from repro.cost.crossover import (
    DataParallelCrossoverModel,
    crossover_nodes,
    crossover_sweep,
    machine_crossover_sweep,
)
from repro.cost.kernels import ALLREDUCE_ALGORITHMS
from repro.cost.model import (
    AnalyticCostModel,
    CompositeCostModel,
    CostModel,
    compose,
)
from repro.cost.models import (
    STEP_CRITICAL,
    AllreduceCostModel,
    CheckpointCostModel,
    ComputeCostModel,
    ConvergenceCostModel,
    GradientAllreduceModel,
    InputPipelineCostModel,
    IoRequirementModel,
    LayoutModel,
    MpExchangeCostModel,
    RooflineCostModel,
    StragglerCostModel,
    step_cost_model,
)
from repro.cost.sweep import SweepResult, sweep, sweep_scalar

__all__ = [
    "kernels",
    "ALLREDUCE_ALGORITHMS",
    "CostBreakdown",
    "CostModel",
    "AnalyticCostModel",
    "CompositeCostModel",
    "compose",
    "LayoutModel",
    "ComputeCostModel",
    "MpExchangeCostModel",
    "GradientAllreduceModel",
    "AllreduceCostModel",
    "InputPipelineCostModel",
    "StragglerCostModel",
    "IoRequirementModel",
    "CheckpointCostModel",
    "RooflineCostModel",
    "ConvergenceCostModel",
    "STEP_CRITICAL",
    "step_cost_model",
    "SweepResult",
    "sweep",
    "sweep_scalar",
    "DataParallelCrossoverModel",
    "crossover_sweep",
    "machine_crossover_sweep",
    "crossover_nodes",
]
