"""Machine-readable benchmark records: ``BENCH_<name>.json`` emitters.

Human-facing benchmark output (the ``report`` tables in ``conftest``)
scrolls away with the CI log; these records persist the numbers. Each
benchmark calls :func:`record` once with its key scalars; the helper adds
wall-clock, the git SHA and the smoke flag, and writes
``BENCH_<name>.json`` into ``$REPRO_BENCH_DIR`` (default: the current
working directory) so CI can upload the files as artifacts and successive
runs can be diffed.

Benchmarks whose scalars correspond to paper-stated numbers (the
``BENCH_BINDINGS`` map in :mod:`repro.verify.expectations`) additionally
get a ``"conformance"`` block: per-scalar pass/fail verdicts against the
expectation registry, with the paper citation and relative error — so a
downloaded record is self-judging, not just a bag of floats.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any

__all__ = ["record", "timed"]


def _git_sha() -> str | None:
    """The repo's HEAD SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _conformance(name: str, scalars: dict[str, Any]) -> dict | None:
    """Expectation-registry verdicts for this record's scalars, if bound."""
    try:
        from repro.verify import verdicts_for
    except ImportError:  # pragma: no cover - repro not importable
        return None
    return verdicts_for(name, scalars)


def record(
    name: str, scalars: dict[str, Any], wall_seconds: float | None = None
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``scalars`` is the benchmark's own payload (timings, speedups, grid
    sizes — JSON-serialisable values only); ``wall_seconds`` is the
    benchmark's overall wall-clock when the caller measured one. Scalars
    bound to the expectation registry gain a ``"conformance"`` verdict
    block (see the module docstring).
    """
    payload = {
        "name": name,
        "wall_seconds": wall_seconds,
        "scalars": scalars,
        "conformance": _conformance(name, scalars),
        "git_sha": _git_sha(),
        "smoke": bool(os.environ.get("REPRO_SMOKE")),
    }
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    path = out_dir / f"BENCH_{name}.json"
    try:
        from repro.atomicio import atomic_write_text
    except ImportError:  # pragma: no cover - repro not importable
        out_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


class timed:
    """Context manager measuring one block's wall-clock for :func:`record`.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t.seconds >= 0.0
    True
    """

    seconds: float

    def __enter__(self) -> "timed":
        self._t0 = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds = time.perf_counter() - self._t0
