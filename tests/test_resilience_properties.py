"""Property-based tests (Hypothesis) for the resilience layer.

The central invariant: the discrete-event engine stays deterministic under
fault injection — the same seed must reproduce identical failure times,
retry counts, and makespans, and disabling injection must reproduce the
fault-free results exactly.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.resilience import (
    FailureInjector,
    NodeFailureModel,
    RetryPolicy,
    simulate_checkpoint_restart,
)
from repro.scheduler import FaultModel, Job, Scheduler
from repro.sim import Engine, Interrupt, Timeout
from repro.workflows.dag import TaskGraph
from repro.workflows.facility import Facility

from .hypothesis_settings import (
    DETERMINISM_SETTINGS,
    SLOW_SETTINGS,
    STANDARD_SETTINGS,
)

YEAR = 365 * 24 * 3600.0


def _run_injected(seed: int, mtbf: float, work: float) -> tuple:
    """One injected run; returns (failure_times, finish_time)."""
    eng = Engine()

    def victim():
        done = 0.0
        while done < work:
            start = eng.now
            try:
                yield Timeout(work - done)
                done = work
            except Interrupt:
                done += 0.5 * (eng.now - start)  # half the segment survives
        return done

    proc = eng.spawn(victim())
    injector = FailureInjector(eng, NodeFailureModel(mtbf), seed=seed)
    injector.attach(proc, n_nodes=4)
    eng.run()
    return tuple(e.time for e in injector.events), proc.finished_at


class TestEngineDeterminism:
    @DETERMINISM_SETTINGS
    @given(seed=st.integers(0, 2**31), mtbf=st.floats(50.0, 5000.0))
    def test_same_seed_identical_failure_times_and_makespan(self, seed, mtbf):
        assert _run_injected(seed, mtbf, 300.0) == _run_injected(
            seed, mtbf, 300.0
        )

    @STANDARD_SETTINGS
    @given(seed=st.integers(0, 2**31))
    def test_failure_times_strictly_ordered(self, seed):
        times, _ = _run_injected(seed, 100.0, 500.0)
        assert all(a < b for a, b in zip(times, times[1:]))


class TestRestartProperties:
    @SLOW_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        interval=st.floats(20.0, 200.0),
        write=st.floats(0.5, 10.0),
        mtbf=st.floats(500.0, 50000.0),
    )
    def test_same_seed_identical_stats(self, seed, interval, write, mtbf):
        kwargs = dict(
            work_seconds=1000.0, interval=interval, write_time=write,
            n_nodes=8, node_mtbf_seconds=mtbf, seed=seed,
        )
        assert simulate_checkpoint_restart(**kwargs) == (
            simulate_checkpoint_restart(**kwargs)
        )

    @SLOW_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        interval=st.floats(20.0, 200.0),
        mtbf=st.floats(500.0, 50000.0),
    )
    def test_accounting_closes_and_goodput_bounded(self, seed, interval, mtbf):
        stats = simulate_checkpoint_restart(
            work_seconds=1000.0, interval=interval, write_time=2.0,
            n_nodes=8, node_mtbf_seconds=mtbf, seed=seed,
        )
        assert stats.work_seconds == 1000.0
        # every wall second is work, checkpoint, lost, or restart time
        assert abs(
            stats.wall_seconds
            - (stats.work_seconds + stats.checkpoint_seconds
               + stats.lost_seconds + stats.restart_seconds)
        ) < 1e-6
        assert 0.0 < stats.goodput_fraction <= 1.0
        assert stats.goodput_fraction + stats.overhead_fraction == 1.0


def _dag_run(seed, rate, retry):
    graph = TaskGraph({"hpc": Facility(name="HPC", nodes=8, speed=1.0)})
    graph.add_task("a", 100.0, "hpc", nodes=2, failure_rate=rate,
                   checkpoint_interval=25.0, checkpoint_write_time=1.0)
    graph.add_task("b", 200.0, "hpc", nodes=4, deps=("a",), failure_rate=rate)
    graph.add_task("c", 50.0, "hpc", nodes=8, deps=("a", "b"))
    return graph.execute(retry=retry, seed=seed)


class TestDagDeterminism:
    @STANDARD_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        rate=st.floats(1e-4, 1e-2),
    )
    def test_same_seed_identical_retries_and_makespan(self, seed, rate):
        policy = RetryPolicy(max_attempts=200)
        a = _dag_run(seed, rate, policy)
        b = _dag_run(seed, rate, policy)
        assert a.makespan == b.makespan
        assert a.attempts == b.attempts
        assert a.n_retries == b.n_retries
        assert a.end_times == b.end_times

    @STANDARD_SETTINGS
    @given(seed=st.integers(0, 2**31))
    def test_zero_rate_matches_fault_free_baseline_exactly(self, seed):
        baseline = _dag_run(0, 0.0, None)
        injected_off = _dag_run(seed, 0.0, RetryPolicy())
        assert injected_off.makespan == baseline.makespan
        assert injected_off.start_times == baseline.start_times
        assert injected_off.end_times == baseline.end_times
        assert injected_off.n_failures == 0

    @STANDARD_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        rate=st.floats(1e-4, 3e-3),
    )
    def test_failures_never_shorten_the_makespan(self, seed, rate):
        clean = _dag_run(seed, 0.0, None)
        faulty = _dag_run(seed, rate, RetryPolicy(max_attempts=500))
        assert faulty.makespan >= clean.makespan
        assert faulty.lost_seconds >= 0.0


def _policy(max_attempts, base, factor, cap, jitter=0.0, deadline_s=None):
    return RetryPolicy(
        max_attempts=max_attempts, backoff_base=base, backoff_factor=factor,
        backoff_max=cap, jitter_fraction=jitter, deadline_s=deadline_s,
    )


class TestRetryDelays:
    """Property suites for ``RetryPolicy.delays()``: every yielded delay
    respects the base/cap/jitter bounds, and a deadline bounds the
    cumulative sleep (the campaign service's client backoff rides on
    these guarantees)."""

    @STANDARD_SETTINGS
    @given(
        max_attempts=st.integers(1, 12),
        base=st.floats(0.01, 50.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 500.0),
    )
    def test_jitter_free_delays_match_formula_exactly(
        self, max_attempts, base, factor, cap
    ):
        policy = _policy(max_attempts, base, factor, cap)
        delays = list(policy.delays())
        assert len(delays) == max_attempts - 1
        for i, delay in enumerate(delays, start=1):
            assert delay == min(base * factor ** (i - 1), cap)

    @STANDARD_SETTINGS
    @given(
        max_attempts=st.integers(2, 12),
        base=st.floats(0.01, 50.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 500.0),
        jitter=st.floats(0.0, 0.99),
        seed=st.integers(0, 2**31),
    )
    def test_jittered_delays_stay_within_relative_bounds(
        self, max_attempts, base, factor, cap, jitter, seed
    ):
        import numpy as np

        policy = _policy(max_attempts, base, factor, cap, jitter=jitter)
        delays = list(policy.delays(np.random.default_rng(seed)))
        assert len(delays) == max_attempts - 1
        for i, delay in enumerate(delays, start=1):
            nominal = min(base * factor ** (i - 1), cap)
            assert nominal * (1.0 - jitter) <= delay
            assert delay <= nominal * (1.0 + jitter)

    @STANDARD_SETTINGS
    @given(
        max_attempts=st.integers(1, 12),
        base=st.floats(0.01, 50.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 500.0),
    )
    def test_jitter_free_delays_monotone_nondecreasing(
        self, max_attempts, base, factor, cap
    ):
        delays = list(_policy(max_attempts, base, factor, cap).delays())
        assert all(a <= b for a, b in zip(delays, delays[1:]))

    @STANDARD_SETTINGS
    @given(
        max_attempts=st.integers(1, 20),
        base=st.floats(0.01, 50.0),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 500.0),
        deadline=st.floats(0.01, 100.0),
    )
    def test_deadline_bounds_cumulative_sleep(
        self, max_attempts, base, factor, cap, deadline
    ):
        policy = _policy(max_attempts, base, factor, cap,
                         deadline_s=deadline)
        delays = list(policy.delays())
        assert sum(delays) <= deadline
        assert len(delays) <= max_attempts - 1
        # the deadline only ever *shortens* the schedule; the prefix that
        # survives is identical to the unbounded policy's
        unbounded = list(_policy(max_attempts, base, factor, cap).delays())
        assert delays == unbounded[: len(delays)]

    @STANDARD_SETTINGS
    @given(
        max_attempts=st.integers(1, 12),
        deadline=st.floats(0.01, 100.0),
        elapsed=st.floats(0.0, 200.0),
    )
    def test_exhausted_consistent_with_attempts_and_deadline(
        self, max_attempts, deadline, elapsed
    ):
        policy = _policy(max_attempts, 1.0, 2.0, 8.0, deadline_s=deadline)
        assert policy.exhausted(max_attempts)
        if max_attempts > 1 and elapsed < deadline:
            assert not policy.exhausted(max_attempts - 1, elapsed_s=elapsed)
        if elapsed >= deadline:
            assert policy.exhausted(0, elapsed_s=elapsed)


def _sched_jobs():
    return [
        Job("wide", nodes=2048, duration=20000.0, submit_time=0.0),
        Job("mid", nodes=512, duration=9000.0, submit_time=30.0),
        Job("small", nodes=64, duration=2500.0, submit_time=60.0),
    ]


class TestSchedulerDeterminism:
    @STANDARD_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        mtbf_years=st.floats(0.5, 5.0),
    )
    def test_same_seed_identical_schedule(self, seed, mtbf_years):
        faults = FaultModel(
            node_mtbf_seconds=mtbf_years * YEAR,
            checkpoint_interval=3600.0,
            seed=seed,
        )
        a = Scheduler(4608).run(_sched_jobs(), faults=faults)
        b = Scheduler(4608).run(_sched_jobs(), faults=faults)
        assert a.makespan == b.makespan
        assert a.n_failures == b.n_failures
        assert a.n_requeues == b.n_requeues
        assert a.lost_node_hours == b.lost_node_hours
        assert a.end_times == b.end_times

    @STANDARD_SETTINGS
    @given(
        seed=st.integers(0, 2**31),
        mtbf_years=st.floats(2.0, 10.0),
    )
    def test_goodput_bounded_and_no_free_lunch(self, seed, mtbf_years):
        base = Scheduler(4608).run(_sched_jobs())
        faults = FaultModel(node_mtbf_seconds=mtbf_years * YEAR, seed=seed)
        result = Scheduler(4608).run(_sched_jobs(), faults=faults)
        assert 0.0 < result.goodput_fraction <= 1.0
        if not result.abandoned:
            # every job finishes its useful work; failures only add wall time
            assert result.makespan >= base.makespan
            assert result.delivered_node_hours == base.delivered_node_hours
