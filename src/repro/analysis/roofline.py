"""Roofline analysis for the model catalog.

Section VI-B observes that AI/ML workloads "are typically computational
bound at the device level" because their three basic operation types are
dense. The roofline makes that quantitative: a kernel with arithmetic
intensity above the ridge point (peak FLOPs / memory bandwidth) is
compute-bound on the device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cost import RooflineCostModel, kernels
from repro.errors import ConfigurationError
from repro.machine.gpu import GpuSpec, Precision


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/model placed on a device roofline."""

    arithmetic_intensity: float  # FLOPs per byte of device-memory traffic
    attainable_flops: float
    ridge_intensity: float

    @property
    def compute_bound(self) -> bool:
        return self.arithmetic_intensity >= self.ridge_intensity


def roofline_point(
    gpu: GpuSpec,
    flops: float,
    bytes_moved: float,
    precision: Precision = Precision.MIXED,
) -> RooflinePoint:
    """Place a kernel with ``flops`` work and ``bytes_moved`` memory traffic
    on the GPU's roofline."""
    if flops <= 0 or bytes_moved <= 0:
        raise ConfigurationError("flops and bytes_moved must be positive")
    peak = gpu.peak(precision)
    intensity = flops / bytes_moved
    ridge = peak / gpu.memory_bandwidth
    attainable = kernels.roofline_attainable(
        peak, gpu.memory_bandwidth, intensity
    )
    return RooflinePoint(
        arithmetic_intensity=intensity,
        attainable_flops=attainable,
        ridge_intensity=ridge,
    )


def roofline_sweep(
    gpu: GpuSpec,
    flops: np.ndarray,
    bytes_moved: np.ndarray,
    precision: Precision = Precision.MIXED,
):
    """Vectorized roofline placement over (flops x bytes_moved) grids.

    Returns the :class:`~repro.cost.breakdown.CostBreakdown` from
    :class:`~repro.cost.RooflineCostModel` with ``arithmetic_intensity``,
    ``ridge_intensity`` and ``attainable_flops`` terms broadcast over the
    inputs.
    """
    return RooflineCostModel().evaluate_batch(
        flops=np.asarray(flops, dtype=float),
        bytes_moved=np.asarray(bytes_moved, dtype=float),
        peak_flops=gpu.peak(precision),
        memory_bandwidth=gpu.memory_bandwidth,
    )
