"""CLI error-path contract: every ``repro.errors`` class maps to a distinct
nonzero exit code, and the service subcommands surface typed failures as
those codes (never tracebacks)."""

import json
import tempfile
import threading
from pathlib import Path

import pytest

from repro import errors
from repro.cli import EXIT_CODES, exit_code_for, main


class TestExitCodeTable:
    @pytest.mark.parametrize(
        "exc_type,code", sorted(EXIT_CODES.items(), key=lambda kv: kv[1]),
        ids=lambda v: v.__name__ if isinstance(v, type) else str(v),
    )
    def test_each_mapping(self, exc_type, code):
        assert exit_code_for(exc_type("boom")) == code

    def test_codes_distinct_and_nonzero(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        # 0 = success, 1 = generic failure, 2 = argparse usage error
        assert all(c not in (0, 1, 2) for c in codes)

    def test_subclass_inherits_parent_code(self):
        class Special(errors.Saturated):
            pass

        assert exit_code_for(Special("x")) == EXIT_CODES[errors.Saturated]

    def test_every_service_error_is_mapped(self):
        for exc_type in (errors.ServiceError, errors.Saturated,
                         errors.LeaseExpired, errors.JournalCorrupt,
                         errors.ProtocolError):
            assert exc_type in EXIT_CODES

    def test_unlisted_repro_error_falls_back(self):
        class Novel(errors.ReproError):
            pass

        assert exit_code_for(Novel("x")) == EXIT_CODES[errors.ReproError]


class TestServiceErrorPaths:
    def test_submit_without_spec_is_configuration_error(self, capsys):
        code = main(["submit", "--socket", "/nope"])
        assert code == EXIT_CODES[errors.ConfigurationError]
        err = capsys.readouterr().err
        assert err.startswith("error: [ConfigurationError]")
        assert "--spec" in err

    def test_submit_unreachable_socket_is_service_error(self, capsys):
        code = main(["submit", "--drug", "3", "--socket", "/nope/s",
                     "--timeout", "0.2"])
        assert code == EXIT_CODES[errors.ServiceError]
        assert "cannot reach server" in capsys.readouterr().err

    def test_campaign_status_unreachable_socket(self, capsys):
        code = main(["campaign-status", "--socket", "/nope/s",
                     "--timeout", "0.2"])
        assert code == EXIT_CODES[errors.ServiceError]
        assert "[ServiceError]" in capsys.readouterr().err

    def test_serve_corrupt_journal_is_journal_corrupt(self, tmp_path,
                                                      capsys):
        from repro.service.journal import Journal, segment_paths

        jdir = tmp_path / "journal"
        journal = Journal(jdir)
        for i in range(3):
            journal.append_commit("tick", i=i)
        journal.close()
        segment = segment_paths(jdir)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"garbage mid segment\n"
        segment.write_bytes(b"".join(lines))
        sock = Path(tempfile.mkdtemp(prefix="rsvc-")) / "s"
        code = main(["serve", "--drug", "2", "--journal", str(jdir),
                     "--socket", str(sock)])
        assert code == EXIT_CODES[errors.JournalCorrupt]
        assert "[JournalCorrupt]" in capsys.readouterr().err

    def test_serve_bad_spec_file(self, tmp_path, capsys):
        bad = tmp_path / "campaign.json"
        bad.write_text(json.dumps({"name": "x", "jobs": [
            {"job_id": "a", "handler": "quadrature"},
            {"job_id": "a", "handler": "quadrature"},
        ]}))
        sock = Path(tempfile.mkdtemp(prefix="rsvc-")) / "s"
        code = main(["serve", "--spec", str(bad), "--journal",
                     str(tmp_path / "j"), "--socket", str(sock)])
        assert code == EXIT_CODES[errors.ConfigurationError]


class TestServiceRoundTrip:
    def test_serve_submit_work_status_via_cli(self, tmp_path, monkeypatch,
                                              capsys):
        """The full CLI surface end to end: serve, submit, work, status."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        from repro.service import drug_campaign

        spec = drug_campaign(3, seed=4)
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(spec.to_json())
        sock = Path(tempfile.mkdtemp(prefix="rsvc-")) / "s"
        jdir = tmp_path / "journal"

        server = threading.Thread(
            target=main,
            args=(["serve", "--spec", str(spec_path), "--journal",
                   str(jdir), "--socket", str(sock),
                   "--sweep-interval", "0.05"],),
            daemon=True,
        )
        server.start()
        from repro.service import ServiceClient

        client = ServiceClient(sock, session="cli-test")
        client.wait_ready(timeout_s=20.0)
        try:
            assert main(["submit", "--spec", str(spec_path), "--socket",
                         str(sock)]) == 0
            assert "already known" in capsys.readouterr().out

            assert main(["work", "--socket", str(sock), "--session", "w0",
                         "--max-jobs", "2"]) == 0
            assert "3 jobs completed" in capsys.readouterr().out

            assert main(["campaign-status", "--socket", str(sock),
                         "--results", "--json"]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["finished"] is True
            assert status["counts"]["done"] == 3
            assert sorted(status["results"]) == [
                "dock-0000", "dock-0001", "dock-0002",
            ]
        finally:
            client.drain()
            server.join(timeout=10)
        assert not server.is_alive()
