"""Adoption-trend analysis over the survey data.

The paper's conclusions extrapolate: INCITE adoption "has grown steadily
from 20% in 2019" and "we expect use of autonomous workflows to increase".
This module quantifies the trend: linear and logistic fits to the per-year
active fraction, with projections, plus the hours-weighted variants of the
usage figures (Section II-C's alternative accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import curve_fit

from repro.errors import ConfigurationError
from repro.portfolio.analytics import PortfolioAnalytics
from repro.portfolio.taxonomy import AdoptionStatus, Program


@dataclass(frozen=True)
class TrendFit:
    """A fitted adoption trend for one program."""

    program: Program
    years: tuple[int, ...]
    fractions: tuple[float, ...]
    slope_per_year: float  # linear fit
    intercept: float
    logistic_midpoint: float | None  # year of 50 % adoption, if fit converged
    logistic_rate: float | None

    def linear_projection(self, year: int) -> float:
        """Linear extrapolation, clipped to [0, 1]."""
        return float(np.clip(self.intercept + self.slope_per_year * year, 0, 1))

    def logistic_projection(self, year: int) -> float:
        if self.logistic_midpoint is None or self.logistic_rate is None:
            raise ConfigurationError("logistic fit unavailable")
        return float(
            1.0 / (1.0 + np.exp(-self.logistic_rate * (year - self.logistic_midpoint)))
        )

    def year_reaching(self, fraction: float) -> float:
        """Year at which the linear trend crosses ``fraction``."""
        if not 0 < fraction < 1:
            raise ConfigurationError("fraction must be in (0, 1)")
        if self.slope_per_year <= 0:
            raise ConfigurationError("non-increasing trend never reaches target")
        return (fraction - self.intercept) / self.slope_per_year


def fit_adoption_trend(
    analytics: PortfolioAnalytics, program: Program = Program.INCITE
) -> TrendFit:
    """Fit the active-adoption fraction of ``program`` across its years."""
    table = analytics.usage_by_program_year()
    points = sorted(
        (year, fractions[AdoptionStatus.ACTIVE])
        for (p, year), fractions in table.items()
        if p is program
    )
    if len(points) < 2:
        raise ConfigurationError(f"{program.value}: need >= 2 years to fit a trend")
    years = np.array([y for y, _ in points], dtype=float)
    fractions = np.array([f for _, f in points])

    slope, intercept = np.polyfit(years, fractions, 1)

    midpoint = rate = None
    if len(points) >= 3:
        def logistic(t, mid, k):
            return 1.0 / (1.0 + np.exp(-k * (t - mid)))

        try:
            (midpoint, rate), _ = curve_fit(
                logistic, years, fractions,
                p0=(years.mean() + 5.0, 0.2),
                maxfev=5000,
            )
            midpoint, rate = float(midpoint), float(rate)
            if rate <= 0:
                midpoint = rate = None
        except RuntimeError:
            midpoint = rate = None

    return TrendFit(
        program=program,
        years=tuple(int(y) for y in years),
        fractions=tuple(float(f) for f in fractions),
        slope_per_year=float(slope),
        intercept=float(intercept),
        logistic_midpoint=midpoint,
        logistic_rate=rate,
    )


def hours_weighted_usage(analytics: PortfolioAnalytics) -> dict[AdoptionStatus, float]:
    """Figure 1 weighted by allocation hours instead of project counts —
    the accounting Section II-C warns "could be misrepresentative"."""
    return analytics.overall_usage(by_hours=True)


def usage_accounting_comparison(
    analytics: PortfolioAnalytics,
) -> dict[str, dict[AdoptionStatus, float]]:
    """Project-count vs hours-weighted adoption, side by side."""
    return {
        "by_projects": analytics.overall_usage(by_hours=False),
        "by_hours": analytics.overall_usage(by_hours=True),
    }
