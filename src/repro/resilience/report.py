"""ResilienceReport: the goodput-vs-throughput accounting of a failing run.

Aggregates what every layer of the stack reports under failure injection —
wall-clock, useful work, failures, retries, checkpoint and lost time — into
the metrics that matter for time-to-solution at scale: goodput fraction,
lost node-hours, checkpoint overhead, and (when an analytical Young/Daly
prediction is supplied) the empirical-vs-analytical agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError

from repro.resilience.restart import RestartStats


@dataclass(frozen=True)
class ResilienceReport:
    """Resilience accounting for one campaign/job/workflow."""

    name: str
    n_nodes: int
    node_mtbf_seconds: float
    wall_seconds: float
    useful_seconds: float
    n_failures: int = 0
    n_retries: int = 0
    n_checkpoints: int = 0
    checkpoint_seconds: float = 0.0
    lost_seconds: float = 0.0
    analytical_overhead: float | None = None
    raw_flops: float | None = None  # failure-free sustained FLOP/s, if known

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.wall_seconds < 0 or self.useful_seconds < 0:
            raise ConfigurationError("times must be non-negative")
        if self.useful_seconds > self.wall_seconds * (1 + 1e-12):
            raise ConfigurationError("useful work cannot exceed wall-clock")

    @classmethod
    def from_restart(
        cls,
        name: str,
        n_nodes: int,
        node_mtbf_seconds: float,
        stats: RestartStats,
        analytical_overhead: float | None = None,
        raw_flops: float | None = None,
    ) -> "ResilienceReport":
        return cls(
            name=name,
            n_nodes=n_nodes,
            node_mtbf_seconds=node_mtbf_seconds,
            wall_seconds=stats.wall_seconds,
            useful_seconds=stats.work_seconds,
            n_failures=stats.n_failures,
            n_checkpoints=stats.n_checkpoints,
            checkpoint_seconds=stats.checkpoint_seconds,
            lost_seconds=stats.lost_seconds,
            analytical_overhead=analytical_overhead,
            raw_flops=raw_flops,
        )

    # -- derived metrics ---------------------------------------------------------

    @property
    def overhead_fraction(self) -> float:
        """Simulated checkpoint + rework overhead fraction."""
        if self.wall_seconds == 0:
            return 0.0
        return (self.wall_seconds - self.useful_seconds) / self.wall_seconds

    @property
    def goodput_fraction(self) -> float:
        return 1.0 - self.overhead_fraction

    @property
    def goodput_flops(self) -> float | None:
        """Raw sustained FLOP/s derated by the resilience overhead."""
        if self.raw_flops is None:
            return None
        return self.raw_flops * self.goodput_fraction

    @property
    def lost_node_hours(self) -> float:
        return self.lost_seconds * self.n_nodes / 3600.0

    @property
    def checkpoint_node_hours(self) -> float:
        return self.checkpoint_seconds * self.n_nodes / 3600.0

    @property
    def system_mtbf(self) -> float:
        return self.node_mtbf_seconds / self.n_nodes

    def agreement(self) -> float | None:
        """|empirical - analytical| / analytical, when a prediction exists."""
        if self.analytical_overhead is None:
            return None
        if self.analytical_overhead == 0:
            return 0.0 if self.overhead_fraction == 0 else float("inf")
        return (
            abs(self.overhead_fraction - self.analytical_overhead)
            / self.analytical_overhead
        )

    def matches_analytical(self, tolerance: float = 0.2) -> bool:
        agreement = self.agreement()
        if agreement is None:
            raise ConfigurationError("no analytical prediction to compare to")
        return agreement <= tolerance

    # -- presentation -------------------------------------------------------------

    def format(self) -> str:
        lines = [
            f"ResilienceReport — {self.name}",
            f"  nodes                {self.n_nodes}",
            f"  node MTBF            {self.node_mtbf_seconds / (365 * 24 * 3600):.1f} y"
            f"  (job-wide MTBF {units.format_time(self.system_mtbf)})",
            f"  wall-clock           {units.format_time(self.wall_seconds)}",
            f"  useful work          {units.format_time(self.useful_seconds)}"
            f"  (goodput {self.goodput_fraction:.1%})",
            f"  failures             {self.n_failures}"
            f"  (retries {self.n_retries})",
            f"  checkpoints          {self.n_checkpoints}"
            f"  ({self.checkpoint_node_hours:.1f} node-h)",
            f"  lost work            {self.lost_node_hours:.1f} node-h",
            f"  simulated overhead   {self.overhead_fraction:.2%}",
        ]
        if self.analytical_overhead is not None:
            agreement = self.agreement()
            assert agreement is not None
            verdict = "OK" if agreement <= 0.2 else "MISMATCH"
            lines.append(
                f"  Young/Daly overhead  {self.analytical_overhead:.2%}"
                f"  (rel. err {agreement:.1%} [{verdict}])"
            )
        if self.raw_flops is not None:
            goodput = self.goodput_flops
            assert goodput is not None
            lines.append(
                f"  raw throughput       {self.raw_flops / 1e15:.2f} PFLOP/s"
            )
            lines.append(
                f"  expected goodput     {goodput / 1e15:.2f} PFLOP/s"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
