#!/usr/bin/env python
"""The submodel motif end to end: an ML subgrid closure in a climate toy.

Table I's example for the most common AI motif on Summit is "physics-based
radiation model in a climate code replaced by ML model"; the paper cites
Rasp, Pritchard & Gentine for both the promise (accurate learned subgrid
physics) and the danger (instability when "networks are applied
iteratively", Section VI-A.3). This example reproduces the full story on
two-scale Lorenz-96:

1. run the coupled truth model and harvest (resolved stencil -> subgrid
   forcing) training pairs;
2. train an MLP closure;
3. compare the parameterised reduced model against the uncorrected
   truncation on forecast skill and long-run climate, with the
   conservation correction applied "by a final correction".

Run:  python examples/ml_subgrid_closure.py
"""

from repro.workflows.case_submodel import SubmodelWorkflow


def main() -> None:
    print("ML subgrid closure for two-scale Lorenz-96 (submodel motif)")
    print("=" * 66)

    workflow = SubmodelWorkflow(seed=0)
    rmse = workflow.train_closure(n_samples=4000, epochs=120)
    print(f"Closure trained on 4000 coupled-run samples; held-out RMSE {rmse:.3f}")
    print()

    result = workflow.run(forecast_steps=1500, climate_steps=6000)

    print("Forecast skill (time until RMSE > 3 vs the coupled truth):")
    print(f"  ML closure       {result.skill_horizon_ml:.3f} model time units")
    print(f"  no closure       {result.skill_horizon_truncated:.3f} model time units")
    print(f"  gain             {result.horizon_gain:.2f}x")
    print()
    print("Free-running climate (the subgrid coupling damps the resolved")
    print("variables, so *variance* is where missing physics shows):")
    print(f"  {'':<16}{'mean':>8}{'variance':>10}")
    print(f"  {'coupled truth':<16}{result.climate_mean_truth:>8.3f}"
          f"{result.climate_var_truth:>10.2f}")
    print(f"  {'ML closure':<16}{result.climate_mean_ml:>8.3f}"
          f"{result.climate_var_ml:>10.2f}  (var error "
          f"{result.climate_error_ml:.2f})")
    print(f"  {'no closure':<16}{result.climate_mean_truncated:>8.3f}"
          f"{result.climate_var_truncated:>10.2f}  (var error "
          f"{result.climate_error_truncated:.2f})")
    print()
    print(f"Stable under iteration (Section VI-A.3): {result.stable}")
    print("(conservation of the domain-mean forcing is imposed by a final")
    print(" correction — one of the three constraint mechanisms the paper lists)")


if __name__ == "__main__":
    main()
