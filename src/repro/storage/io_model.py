"""Section VI-B aggregate read-bandwidth requirement model.

The paper estimates the read bandwidth required to sustain full-Summit
data-parallel training as::

    required = per_device_throughput (samples/s)
             x bytes_per_sample
             x n_devices

For ResNet-50 on ImageNet this comes to roughly 20 TB/s — unachievable on a
2.5 TB/s GPFS but within the >27 TB/s aggregate of node-local NVMe. This
module computes the requirement and classifies feasibility against each tier
of the storage hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.cost import kernels
from repro.errors import ConfigurationError
from repro.storage.burst_buffer import BurstBuffer
from repro.storage.filesystem import SharedFileSystem


@dataclass(frozen=True)
class IoRequirement:
    """The outcome of a read-requirement analysis."""

    required_bandwidth: float  # bytes/s aggregate
    per_device_bandwidth: float  # bytes/s per accelerator
    n_devices: int

    def summary(self) -> str:
        return (
            f"{units.format_rate(self.required_bandwidth)} aggregate "
            f"({units.format_rate(self.per_device_bandwidth)}/device x "
            f"{self.n_devices} devices)"
        )


def read_requirement(
    samples_per_second_per_device: float,
    bytes_per_sample: float,
    n_devices: int,
) -> IoRequirement:
    """Aggregate read bandwidth needed for ideal data-parallel scaling."""
    if samples_per_second_per_device <= 0:
        raise ConfigurationError("device throughput must be positive")
    if bytes_per_sample <= 0:
        raise ConfigurationError("bytes_per_sample must be positive")
    if n_devices < 1:
        raise ConfigurationError("need at least one device")
    per_device = kernels.per_device_read_bandwidth(
        samples_per_second_per_device, bytes_per_sample
    )
    return IoRequirement(
        required_bandwidth=kernels.required_read_bandwidth(
            samples_per_second_per_device, bytes_per_sample, n_devices
        ),
        per_device_bandwidth=per_device,
        n_devices=n_devices,
    )


@dataclass(frozen=True)
class IoFeasibility:
    """Whether each storage tier can sustain a requirement, and by what margin.

    ``margin`` > 1 means the tier has headroom; < 1 means it throttles
    training to that fraction of ideal throughput.
    """

    requirement: IoRequirement
    shared_fs_margin: float
    nvme_margin: float

    @property
    def shared_fs_feasible(self) -> bool:
        return self.shared_fs_margin >= 1.0

    @property
    def nvme_feasible(self) -> bool:
        return self.nvme_margin >= 1.0

    def io_bound_throughput_fraction(self, use_nvme: bool) -> float:
        """Fraction of ideal training throughput the storage tier sustains."""
        margin = self.nvme_margin if use_nvme else self.shared_fs_margin
        return min(1.0, margin)


def io_feasibility(
    requirement: IoRequirement,
    shared_fs: SharedFileSystem,
    nvme: BurstBuffer,
    n_nodes: int,
    random_access: bool = True,
) -> IoFeasibility:
    """Compare a requirement against both tiers of the Summit hierarchy."""
    if n_nodes < 1:
        raise ConfigurationError("need at least one node")
    fs_bw = shared_fs.aggregate_read_bandwidth
    if random_access:
        fs_bw *= shared_fs.random_read_derate
    nvme_bw = nvme.aggregate_read_bandwidth(n_nodes)
    return IoFeasibility(
        requirement=requirement,
        shared_fs_margin=kernels.bandwidth_margin(
            fs_bw, requirement.required_bandwidth
        ),
        nvme_margin=kernels.bandwidth_margin(
            nvme_bw, requirement.required_bandwidth
        ),
    )
