"""Interconnect models.

The paper's communication analysis (Section VI-B) rests on two facts about
Summit's network: each node injects at 25 GB/s (dual-rail EDR InfiniBand) and
ring-based allreduce achieves half the injection bandwidth algorithmically.
This package provides:

- :mod:`repro.network.link` — alpha-beta (latency/bandwidth) link model;
- :mod:`repro.network.topology` — non-blocking fat-tree construction
  (networkx) matching Summit's three-level EDR fabric;
- :mod:`repro.network.routing` — static vs. adaptive routing and link
  congestion accounting;
- :mod:`repro.network.collectives` — cost models for allreduce (ring,
  recursive doubling, tree), reduce-scatter, allgather and broadcast.
"""

from repro.network.collectives import (
    AllreduceAlgorithm,
    allgather_time,
    allreduce_time,
    broadcast_time,
    paper_allreduce_estimate,
    reduce_scatter_time,
    ring_allreduce_time,
)
from repro.network.link import LinkSpec
from repro.network.placement import PlacementStrategy, placement_study
from repro.network.routing import RouteResult, Router, RoutingPolicy
from repro.network.topology import FatTree, FatTreeSpec

__all__ = [
    "AllreduceAlgorithm",
    "FatTree",
    "FatTreeSpec",
    "LinkSpec",
    "PlacementStrategy",
    "RouteResult",
    "Router",
    "RoutingPolicy",
    "allgather_time",
    "allreduce_time",
    "broadcast_time",
    "paper_allreduce_estimate",
    "placement_study",
    "reduce_scatter_time",
    "ring_allreduce_time",
]
