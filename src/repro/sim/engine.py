"""Generator-based discrete-event engine.

A *process* is a Python generator that yields effects:

- ``Timeout(dt)`` — advance simulated time by ``dt`` seconds;
- ``Process`` — wait for a child process to finish (its return value is sent
  back into the parent);
- ``Resource.acquire()`` request objects — wait for capacity.

Processes that never block — pure timers, like the failure injector's
exponential clocks or Monte-Carlo ensemble timers — can skip the generator
machinery entirely: spawn a :class:`Timer` plan instead of a generator and
the engine detects it at spawn, firing a plain callback with no frame to
resume, no ``StopIteration`` to raise and no intermediate start event.

Homogeneous timer *populations* can go a step further still: a
:class:`~repro.sim.timerbank.TimerBank` holds every clock in numpy arrays
(deadlines, armed seqs, liveness) behind a *single* queue entry carrying
the next-due lane's ``(time, seq)`` key, so a million timers cost the
scheduler one entry instead of a million — see :mod:`repro.sim.timerbank`
for the dispatch and byte-identity contracts.

Determinism and tie-breaking
----------------------------
Event ordering is explicitly ``(time, seq)``-keyed: every scheduled event
carries the simulated time it is due and a monotonically increasing
sequence number drawn at scheduling time. Events fire in ascending
``(time, seq)`` order, so simultaneous events fire in exactly the order
they were scheduled (FIFO) — spawn order for fresh processes, wake order
for resumed ones. Because ``seq`` is unique, the comparison never reaches
the payload, and the order is a total order: both event-queue
implementations (see below) reproduce it bit-for-bit.

Engine implementations
----------------------
``impl`` selects the event-queue scheduler (default: the
``REPRO_ENGINE_IMPL`` environment knob, then ``"calendar"``):

- ``"calendar"`` — a :class:`~repro.sim.calqueue.CalendarQueue` (bucketed
  ring with an overflow heap) with *batched dispatch*: all events at one
  simulated time are drained in a single pass instead of one pop per
  event. The production default.
- ``"heap"`` — the legacy single ``heapq`` loop, kept as the
  differential-testing reference. Same seed, either impl: byte-identical
  event order, results and telemetry traces (enforced by the equivalence
  suite and the committed golden traces).

Processes are *interruptible*: :meth:`Process.interrupt` throws an
:class:`Interrupt` into the generator at its current wait point, whether it
is sleeping in a ``Timeout``, waiting on a child process, or queued for a
resource. This is how node failures reach the work running on the failed
nodes (see :mod:`repro.resilience`): the victim catches the ``Interrupt``,
rolls back to its last checkpoint, and resumes. A process that does not
catch the ``Interrupt`` is killed (``proc.killed`` is set and waiters are
woken with ``None``). An interrupted :class:`Timer` has no frame to throw
into: it is cancelled cleanly — finished with result ``None``, ``killed``
left ``False`` — exactly like a generator that catches the ``Interrupt``
and returns.

Example
-------
>>> eng = Engine()
>>> def job(eng):
...     yield Timeout(2.0)
...     return "done"
>>> p = eng.spawn(job(eng))
>>> eng.run()
>>> p.result
'done'
>>> eng.now
2.0
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections.abc import Generator
from itertools import repeat
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import SimulationError
from repro.sim.calqueue import CalendarQueue, resolve_engine_impl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


@dataclass(frozen=True, slots=True)
class Timeout:
    """Effect: advance the yielding process by ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Timer:
    """A generator-free process plan: sleep ``delay``, fire, maybe re-arm.

    Spawning a ``Timer`` instead of a generator puts the process on the
    engine's fast path: the expiry is scheduled directly (no start event),
    and firing it is a plain call to ``fire`` — no generator frame, no
    ``send``, no ``StopIteration``. ``fire`` may return a non-negative
    float to re-arm the timer that many simulated seconds ahead, or
    ``None`` to finish the process with ``result``. A fire-less timer is a
    pure sleep: it finishes at expiry.

    Timers never block on resources or other processes, which is exactly
    what makes the fast path safe; anything that must wait stays a
    generator. Other processes may wait on a timer's :class:`Process`
    handle as usual.
    """

    __slots__ = ("delay", "fire", "result")

    def __init__(self, delay: float, fire: Any = None, result: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timer delay: {delay}")
        self.delay = delay
        self.fire = fire
        self.result = result


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (e.g. the failure event that killed
    the process's nodes). Catch it at the yield point to implement
    checkpoint-restart; let it propagate to have the engine kill the process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Throw:
    """Internal send-value marker: deliver by ``gen.throw`` not ``gen.send``."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class _Fire:
    """Internal send-value marker: a :class:`Timer` expiry."""

    __slots__ = ()


_FIRE = _Fire()

#: Send-value marker for a timer-*bank* expiry (see
#: :mod:`repro.sim.timerbank`): a bank's single queue entry pops here and
#: the engine hands the whole due slice back to the bank for vectorized
#: dispatch. A distinct instance so the :class:`Timer` inline-finish fast
#: path never confuses the two.
_BANK_FIRE = _Fire()


def validate_delays(delays: Any) -> np.ndarray:
    """Vectorized up-front delay validation shared by the bulk spawn paths.

    Returns ``delays`` as a 1-D ``float64`` array. Negative (or NaN)
    delays raise one :class:`ValueError` naming the first offending index,
    instead of failing lazily at fire time deep inside the event loop.
    """
    arr = np.asarray(delays, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(
            f"timer delays must be one-dimensional, got shape {arr.shape}"
        )
    bad = np.flatnonzero(~(arr >= 0.0))  # catches negatives and NaN alike
    if bad.size:
        i = int(bad[0])
        raise ValueError(
            f"invalid timer delay {float(arr[i])!r} at index {i} "
            f"({bad.size} of {arr.size} delays negative or NaN)"
        )
    return arr


class Process:
    """A running simulated process wrapping a generator (or :class:`Timer`).

    ``__slots__`` keeps the per-process footprint flat: large simulations
    (scheduler ensembles, fault sweeps) allocate thousands of these on the
    hot path.
    """

    __slots__ = (
        "engine", "gen", "name", "finished", "killed", "result",
        "started_at", "finished_at", "_waiters", "_epoch", "_waiting_on",
        "_tel_span",
    )

    def __init__(self, engine: Engine, gen: Any, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.killed = False  # finished via an uncaught Interrupt
        self.result: Any = None
        self.started_at = engine.now
        self.finished_at: float | None = None
        # lazily allocated: most processes are never waited on, and the
        # timer fast path treats ``None`` as "no waiters"
        self._waiters: list[Process] | None = None
        self._epoch = 0  # bumped on interrupt; stale queue entries are skipped
        self._waiting_on: Any = None  # Process | resource request | None
        self._tel_span: Any = None  # open telemetry span, when instrumented

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into this process at its current wait.

        Returns ``False`` (and does nothing) if the process already finished.
        """
        return self.engine._interrupt(self, cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Engine:
    """The event loop over ``(time, seq, epoch, process, value_to_send)``.

    Events are totally ordered by ``(time, seq)`` — see the module
    docstring for the tie-break contract and the ``impl`` knob selecting
    the calendar-queue scheduler (default) or the legacy heap reference.

    ``telemetry`` is the opt-in observability handle
    (:class:`repro.telemetry.Telemetry`): when supplied, the engine binds
    its clock to simulated time and records one span per process lifetime
    plus an instant event per interrupt. When ``None`` (the default) no
    telemetry code runs — the hot path is the uninstrumented seed path.
    """

    __slots__ = (
        "now", "telemetry", "impl", "_heap", "_calendar", "_seq", "_active",
        "_current", "_batch", "_batch_time",
    )

    def __init__(
        self, telemetry: "Telemetry | None" = None, impl: str | None = None
    ):
        self.now = 0.0
        self.telemetry = telemetry
        self.impl = resolve_engine_impl(impl)
        # exactly one of the two queues exists; _schedule branches on _heap
        if self.impl == "heap":
            self._heap: list[tuple] | None = []
            self._calendar: CalendarQueue | None = None
        else:
            self._heap = None
            self._calendar = CalendarQueue()
        self._seq = 0  # next sequence number; drawn in blocks by bulk spawn
        self._active = 0
        self._current: Process | None = None  # process being stepped
        self._batch: list[tuple] | None = None  # same-time batch being drained
        self._batch_time = 0.0
        if telemetry is not None:
            telemetry.bind_clock(lambda: self.now)

    def spawn(self, gen: Generator | Timer, name: str = "") -> Process:
        """Register a new process and schedule its first step.

        A generator is scheduled for its first ``send`` at ``now``; a
        :class:`Timer` plan is detected here and its expiry scheduled
        directly at ``now + delay`` — the generator-free fast path.
        """
        proc = Process(self, gen, name)
        self._active += 1
        if type(gen) is Timer:
            self._schedule(self.now + gen.delay, proc, _FIRE)
        else:
            self._schedule(self.now, proc, None)
        if self.telemetry is not None:
            proc._tel_span = self.telemetry.begin(
                proc.name, "process", facility="engine", track=proc.name
            )
        return proc

    def spawn_timers(
        self,
        delays,
        fire: Any = None,
        result: Any = None,
        name: str = "",
        timer_bank: bool = False,
    ) -> "list[Process] | Any":
        """Spawn one :class:`Timer` process per delay, sharing one plan.

        Semantically identical to ``[self.spawn(Timer(d, fire, result),
        name) for d in delays]`` — same ``(time, seq)`` schedule, same
        per-process results — but the per-spawn overhead is amortised:
        a single shared ``Timer`` plan (the delay lives in the schedule
        entry, not the plan) and an inlined scheduling loop. This is the
        bulk entry point for Monte-Carlo timer storms.

        ``timer_bank=True`` returns a
        :class:`~repro.sim.timerbank.TimerBank` instead of per-timer
        processes: the whole population lives in numpy arrays behind a
        single queue entry, with ``fire`` (if any) called per expiring
        lane. Under ``impl="heap"`` the bank transparently falls back to
        the per-timer object path behind the same handle, so callers never
        branch on the engine implementation. Delays are validated up front
        either way (one vectorized check; :class:`ValueError` names the
        first offending index).
        """
        arr = validate_delays(delays)
        if timer_bank:
            from repro.sim.timerbank import TimerBank

            on_fire = None if fire is None else (lambda lane: fire())
            return TimerBank(
                self, arr, on_fire=on_fire, result=result,
                name=name or "process",
            )
        delays = arr.tolist()  # plain floats: entry times feed telemetry/json
        timer = Timer(0.0, fire, result)
        if not name:
            name = "process"  # what Process derives for a plain Timer
        now = self.now
        procs = [Process(self, timer, name) for _ in delays]
        self._active += len(procs)
        seq0 = self._seq
        self._seq = seq0 + len(procs)  # draw the whole seq block at once
        # zip builds the entry tuples in C — measurably cheaper than a
        # tuple-display comprehension at Monte-Carlo sizes
        entries = list(zip(
            [now + delay for delay in delays],
            range(seq0, seq0 + len(procs)),
            repeat(0),
            procs,
            repeat(_FIRE),
        ))
        heap = self._heap
        if heap is not None:
            for entry in entries:
                heapq.heappush(heap, entry)
        elif self._batch is not None:
            # mid-batch spawn: same-time entries join the live batch (their
            # seq is larger, so appending preserves the (time, seq) order)
            batch_time = self._batch_time
            batch = self._batch
            calendar = self._calendar
            for entry in entries:
                if entry[0] == batch_time:
                    batch.append(entry)
                else:
                    calendar.push(entry)
        else:
            self._calendar.push_many(entries)
        telemetry = self.telemetry
        if telemetry is not None:
            for proc in procs:
                proc._tel_span = telemetry.begin(
                    proc.name, "process", facility="engine", track=proc.name
                )
        return procs

    def _schedule(self, when: float, proc: Process, send_value: Any) -> None:
        seq = self._seq
        self._seq = seq + 1
        entry = (when, seq, proc._epoch, proc, send_value)
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        elif self._batch is not None and when == self._batch_time:
            # same-time event scheduled mid-batch: its seq is larger than
            # every pending entry's, so appending preserves (time, seq) order
            self._batch.append(entry)
        else:
            self._calendar.push(entry)

    def _push_entry(self, entry: tuple) -> None:
        """Insert a pre-built entry whose seq was drawn from this engine.

        Timer banks build their own entries (the seq is the due lane's,
        drawn in blocks at arm time), so unlike ``_schedule`` a mid-batch
        push can carry a seq *older* than pending batch entries: a bank
        re-registering at the batch time keys the entry by its next due
        lane's arm-time seq. That seq is still newer than the entry being
        stepped right now (the bank fired everything at or below it), so
        an ordered insert lands in the unprocessed tail of the batch and
        the drain loop picks it up in global ``(time, seq)`` order.
        """
        heap = self._heap
        if heap is not None:
            heapq.heappush(heap, entry)
        elif self._batch is not None and entry[0] == self._batch_time:
            batch = self._batch
            if not batch or entry[1] > batch[-1][1]:
                batch.append(entry)  # fresh seq: the common fast path
            else:
                insort(batch, entry)  # seq-sorted; never compares payloads
        else:
            self._calendar.push(entry)

    def run(self, until: float | None = None) -> None:
        """Run until no events remain, or simulated time would pass ``until``.

        Leaving the loop — even on an exception — flushes any telemetry
        sink: a run boundary is a quiescent point, so spilled shards reach
        disk without waiting for the handle to be closed.
        """
        try:
            if self._heap is not None:
                self._run_heap(until)
            else:
                self._run_calendar(until)
        finally:
            if self.telemetry is not None:
                self.telemetry.flush()

    def _run_heap(self, until: float | None) -> None:
        """The legacy loop: one heap pop per event.

        Entries whose epoch was bumped by an interrupt are discarded lazily
        as they surface (never re-popped eagerly), and an entry beyond
        ``until`` is pushed back once — the rare case — instead of peeking
        the heap top on every iteration.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            when, _, epoch, proc, send_value = entry
            if epoch != proc._epoch:  # cancelled by an interrupt
                continue
            if until is not None and when > until:
                heapq.heappush(heap, entry)
                self.now = until
                return
            if when < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = when
            self._step(proc, send_value)
        if until is not None:
            self.now = max(self.now, until)

    def _run_calendar(self, until: float | None) -> None:
        """Batched dispatch: drain all events at one time in a single pass.

        Events scheduled *during* a multi-event batch at exactly the batch
        time are appended to it (their seq is necessarily larger), so the
        pass stays a faithful ``(time, seq)`` drain. On an exception the
        unprocessed tail is pushed back, mirroring the heap loop's
        consume-one-at-a-time failure behaviour as closely as possible.

        Two hot-path shortcuts, neither observable in the event order:

        - single-event batches skip the batch bookkeeping entirely (a
          same-time event such a step schedules goes through the queue and
          is popped as the next batch — same total order);
        - a fire-less, waiter-less :class:`Timer` expiry on an
          uninstrumented engine is finished inline, with no call chain.
        """
        queue = self._calendar
        step = self._step
        tel_off = self.telemetry is None
        pop_batch = queue.pop_time_batch
        while True:
            if until is not None:
                when = queue.peek_time()
                if when is None:
                    break
                if when > until:
                    self.now = until
                    return
            batch = pop_batch()
            if batch is None:
                break
            if len(batch) == 1:
                when, _, epoch, proc, send_value = batch[0]
                if epoch != proc._epoch:  # cancelled by an interrupt
                    continue
                if when < self.now:
                    raise SimulationError("event scheduled in the past")
                self.now = when
                if send_value is _FIRE:
                    timer = proc.gen
                    if timer.fire is None and tel_off and not proc._waiters:
                        proc.finished = True
                        proc.result = timer.result
                        proc.finished_at = when
                        self._active -= 1
                        continue
                step(proc, send_value)
                continue
            for entry in batch:
                if entry[2] == entry[3]._epoch:
                    break
            else:
                # every entry was cancelled by an interrupt: discard the
                # batch without advancing the clock (the heap loop's lazy
                # skip never moves ``now`` for stale entries either)
                continue
            when = batch[0][0]
            if when < self.now:
                raise SimulationError("event scheduled in the past")
            self.now = when
            self._batch = batch
            self._batch_time = when
            i = 0
            n = len(batch)
            n_finished = 0  # inline timer finishes, applied to _active once
            try:
                while i < n:
                    _, _, epoch, proc, send_value = batch[i]
                    i += 1
                    if epoch != proc._epoch:  # cancelled by an interrupt
                        continue
                    if send_value is _FIRE:
                        timer = proc.gen
                        if (
                            timer.fire is None
                            and tel_off
                            and not proc._waiters
                        ):
                            proc.finished = True
                            proc.result = timer.result
                            proc.finished_at = when
                            n_finished += 1
                            continue
                    step(proc, send_value)
                    n = len(batch)
            finally:
                self._batch = None
                self._active -= n_finished
                if i < len(batch):  # exception mid-batch: keep the tail
                    for entry in batch[i:]:
                        queue.push(entry)
        if until is not None:
            self.now = max(self.now, until)

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.finished:
            raise SimulationError(f"stepping finished process {proc.name}")
        gen = proc.gen
        if type(gen) is Timer:
            self._fire_timer(proc, gen, send_value)
            return
        if send_value is _BANK_FIRE:
            # a timer bank's entry popped: hand the due slice back to the
            # bank for vectorized dispatch (see repro.sim.timerbank)
            gen._bank_fire(self)
            return
        proc._waiting_on = None
        self._current = proc
        try:
            if isinstance(send_value, _Throw):
                effect = gen.throw(send_value.exc)
            else:
                effect = gen.send(send_value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except Interrupt:
            # the process chose not to handle the interrupt: kill it
            proc.killed = True
            self._finish(proc, None)
            return
        finally:
            self._current = None
        self._dispatch(proc, effect)

    def _fire_timer(self, proc: Process, timer: Timer, send_value: Any) -> None:
        """Advance a :class:`Timer` process: no generator frame involved."""
        if send_value is _FIRE:
            fire = timer.fire
            if fire is not None:
                self._current = proc
                try:
                    next_delay = fire()
                finally:
                    self._current = None
                if next_delay is not None:
                    if next_delay < 0:
                        raise SimulationError(
                            f"timer {proc.name} re-armed with negative "
                            f"delay {next_delay}"
                        )
                    self._schedule(self.now + next_delay, proc, _FIRE)
                    return
            self._finish(proc, timer.result)
        elif isinstance(send_value, _Throw):
            # no frame to throw into: cancel cleanly (not a kill) — the
            # pending expiry was already invalidated by the epoch bump
            self._finish(proc, None)
        else:  # pragma: no cover - timers are only ever sent _FIRE/_Throw
            raise SimulationError(
                f"timer {proc.name} received unexpected value {send_value!r}"
            )

    def _dispatch(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Timeout):
            self._schedule(self.now + effect.delay, proc, None)
        elif isinstance(effect, Process):
            if effect.finished:
                self._schedule(self.now, proc, effect.result)
            else:
                proc._waiting_on = effect
                if effect._waiters is None:
                    effect._waiters = [proc]
                else:
                    effect._waiters.append(proc)
        elif hasattr(effect, "_bind_waiter"):  # resource requests
            proc._waiting_on = effect
            effect._bind_waiter(proc)
        else:
            raise SimulationError(f"process {proc.name} yielded {effect!r}")

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        proc.finished_at = self.now
        self._active -= 1
        if self.telemetry is not None and proc._tel_span is not None:
            self.telemetry.end(proc._tel_span, killed=proc.killed)
            proc._tel_span = None
        waiters = proc._waiters
        if waiters:
            for waiter in waiters:
                waiter._waiting_on = None
                self._schedule(self.now, waiter, result)
            proc._waiters = None

    def _interrupt(self, proc: Process, cause: Any) -> bool:
        if proc.finished:
            return False
        # detach from whatever the process is waiting on
        waiting_on = proc._waiting_on
        if isinstance(waiting_on, Process):
            peers = waiting_on._waiters
            if peers and proc in peers:
                peers.remove(proc)
        elif waiting_on is not None and hasattr(waiting_on, "_cancel"):
            waiting_on._cancel(proc)
        proc._waiting_on = None
        proc._epoch += 1  # invalidate any pending queue entry for this process
        self._schedule(self.now, proc, _Throw(Interrupt(cause)))
        if self.telemetry is not None:
            self.telemetry.instant(
                f"interrupt:{proc.name}", "engine",
                facility="engine", track=proc.name, cause=cause,
            )
        return True

    # Resources use this to resume a blocked process.
    def _resume(self, proc: Process, value: Any) -> None:
        self._schedule(self.now, proc, value)
