"""Compute facilities for multi-site workflow placement.

Trifan et al. (Section V-B) run their campaign across four sites: NAMD on
Perlmutter (NERSC) and ThetaGPU (ALCF), CVAE training on Summit (up to 256
nodes) or a Cerebras CS-2, with FFEA/ANCA-AE/GNO on ThetaGPU. A
:class:`Facility` is a named node pool with a relative speed factor; the DAG
executor acquires nodes from it for each task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Facility:
    """A named machine available to workflow tasks.

    ``speed`` rescales task durations (1.0 = reference machine time);
    ``nodes`` bounds concurrent placement.
    """

    name: str
    nodes: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")
        if self.speed <= 0:
            raise ConfigurationError(f"{self.name}: speed must be positive")

    def duration(self, reference_seconds: float) -> float:
        """Wall-clock on this facility for work that takes
        ``reference_seconds`` on the reference machine."""
        if reference_seconds < 0:
            raise ConfigurationError("negative duration")
        return reference_seconds / self.speed


#: The facilities of the Trifan et al. campaign, with speeds relative to
#: Summit per-node throughput for the respective task types.
FACILITIES = {
    "summit": Facility(name="Summit", nodes=4608, speed=1.0),
    "perlmutter": Facility(name="Perlmutter", nodes=1536, speed=2.2),
    "thetagpu": Facility(name="ThetaGPU", nodes=24, speed=1.6),
    "cs2": Facility(name="Cerebras CS-2", nodes=1, speed=10.0),
}
