"""Genetic algorithm over fixed-length discrete genomes.

Blanchard et al. (Section IV-A.8) find drug candidates with a genetic
algorithm searching compound space scored by a learned cross-attention
network; the drug-design example reuses this class with the random-forest
surrogate as its fitness function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GaResult:
    """Best genome found plus the per-generation best-fitness history."""

    best_genome: np.ndarray
    best_fitness: float
    history: list[float]
    evaluations: int


class GeneticAlgorithm:
    """Maximise ``fitness(genomes) -> scores`` over int genomes.

    Tournament selection, uniform crossover, per-gene mutation, elitism.
    The fitness callable is *batched* — it receives an (n, genome_length)
    array — so learned surrogates evaluate a population in one pass.
    """

    def __init__(
        self,
        genome_length: int,
        n_alleles: int,
        population: int = 64,
        mutation_rate: float = 0.02,
        crossover_rate: float = 0.9,
        tournament: int = 3,
        elitism: int = 2,
        seed: int | None = None,
    ):
        if genome_length < 1 or n_alleles < 2:
            raise ConfigurationError("need genome_length >= 1 and n_alleles >= 2")
        if population < 4:
            raise ConfigurationError("population must be >= 4")
        if not 0 <= mutation_rate <= 1 or not 0 <= crossover_rate <= 1:
            raise ConfigurationError("rates must be in [0, 1]")
        if tournament < 1 or elitism < 0 or elitism >= population:
            raise ConfigurationError("bad tournament/elitism settings")
        self.genome_length = genome_length
        self.n_alleles = n_alleles
        self.population = population
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.tournament = tournament
        self.elitism = elitism
        self.seed = seed

    def run(
        self,
        fitness: Callable[[np.ndarray], np.ndarray],
        generations: int = 50,
        initial: np.ndarray | None = None,
    ) -> GaResult:
        if generations < 1:
            raise ConfigurationError("generations must be >= 1")
        rng = np.random.default_rng(self.seed)
        if initial is not None:
            pop = np.asarray(initial, dtype=int)
            if pop.shape != (self.population, self.genome_length):
                raise ConfigurationError(
                    f"initial population must be "
                    f"({self.population}, {self.genome_length})"
                )
            pop = pop.copy()
        else:
            pop = rng.integers(
                0, self.n_alleles, size=(self.population, self.genome_length)
            )

        history: list[float] = []
        evaluations = 0
        best_genome = pop[0].copy()
        best_fitness = -np.inf

        for _ in range(generations):
            scores = np.asarray(fitness(pop), dtype=float)
            evaluations += len(pop)
            if scores.shape != (self.population,):
                raise ConfigurationError("fitness must return one score per genome")
            gen_best = int(scores.argmax())
            if scores[gen_best] > best_fitness:
                best_fitness = float(scores[gen_best])
                best_genome = pop[gen_best].copy()
            history.append(float(scores[gen_best]))

            # elitism: carry the top genomes unchanged
            elite_idx = np.argsort(scores)[-self.elitism :] if self.elitism else []
            children = [pop[i].copy() for i in elite_idx]

            while len(children) < self.population:
                a = self._select(scores, rng)
                b = self._select(scores, rng)
                child = self._crossover(pop[a], pop[b], rng)
                self._mutate(child, rng)
                children.append(child)
            pop = np.array(children)

        return GaResult(
            best_genome=best_genome,
            best_fitness=best_fitness,
            history=history,
            evaluations=evaluations,
        )

    def _select(self, scores: np.ndarray, rng: np.random.Generator) -> int:
        contenders = rng.integers(0, self.population, size=self.tournament)
        return int(contenders[scores[contenders].argmax()])

    def _crossover(
        self, a: np.ndarray, b: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if rng.random() > self.crossover_rate:
            return a.copy()
        mask = rng.random(self.genome_length) < 0.5
        return np.where(mask, a, b)

    def _mutate(self, genome: np.ndarray, rng: np.random.Generator) -> None:
        mask = rng.random(self.genome_length) < self.mutation_rate
        n = int(mask.sum())
        if n:
            genome[mask] = rng.integers(0, self.n_alleles, size=n)
