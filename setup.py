"""Thin setup.py shim.

The metadata lives in pyproject.toml; this file exists so the package can be
installed editable (``pip install -e .`` / ``python setup.py develop``) on
environments whose setuptools predates PEP 660 editable-wheel support or
lacks the ``wheel`` package (e.g. air-gapped systems).
"""

from setuptools import setup

setup()
