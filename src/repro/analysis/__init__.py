"""Performance-analysis utilities: scaling laws, roofline, calibration."""

from repro.analysis.roofline import RooflinePoint, roofline_point
from repro.analysis.scaling_laws import (
    amdahl_speedup,
    fit_serial_fraction,
    gustafson_speedup,
    parallel_efficiency,
    scaled_speedup,
)

__all__ = [
    "RooflinePoint",
    "amdahl_speedup",
    "fit_serial_fraction",
    "gustafson_speedup",
    "parallel_efficiency",
    "roofline_point",
    "scaled_speedup",
]
