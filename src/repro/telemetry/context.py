"""The ``Telemetry`` handle: the one object instrumented code touches.

Design rules, in order:

1. **Opt-in.** Every instrumented call site takes ``telemetry=None`` and
   does nothing when it stays ``None`` — the uninstrumented hot path is the
   seed code path, byte for byte.
2. **No globals.** Parent spans are passed explicitly; the handle owns all
   state. Two runs never share anything unless handed the same object.
3. **Deterministic.** Span ids are a simple counter, records append in call
   order, and times come from the simulation clock (or explicit ``time=``
   arguments), so identical seeds produce identical traces — the exporters
   then serialize them byte-identically.

The clock is a zero-argument callable; the discrete-event engine binds
``lambda: engine.now`` when it is constructed with a telemetry handle.
Wall-clock instrumentation (cost-sweep stage timing) passes explicit
``perf_counter`` offsets instead — keep simulated and wall traces in
separate handles.

Storage is pluggable (PR 8): by default closed records accumulate in the
in-memory lists exactly as always, but a ``sink`` (any
:class:`~repro.telemetry.stream.SpanSink`, e.g. the sharded JSONL spiller)
replaces the lists entirely — records stream out as they close and the
handle stays O(1) in memory. ``add_tap`` registers *observers* that see
every closed record in both modes without changing where records live —
the live pubsub hub in :mod:`repro.service` is a tap.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from repro.errors import ConfigurationError

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import CounterSample, InstantEvent, Span
from repro.telemetry.timeline import UtilizationTimeline

#: Above this many nodes a facility gets per-task tracks instead of
#: per-node tracks — a 4 608-node machine as 4 608 Perfetto rows is noise.
DEFAULT_MAX_NODE_TRACKS = 256


class Telemetry:
    """Collects spans, instant events, counter samples, and metrics."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        max_node_tracks: int = DEFAULT_MAX_NODE_TRACKS,
        sink=None,
    ):
        self.clock = clock
        self.max_node_tracks = max_node_tracks
        self.sink = sink
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.samples: list[CounterSample] = []
        self.metrics = MetricsRegistry()
        self._taps: list[Any] = []
        self._next_id = 1

    # -- pickling (handles cross process boundaries in the exec fabric) -----------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # Clocks, sinks and taps are process-local (callables, open files,
        # live hubs); a handle crossing a process boundary carries records
        # and metrics only.
        state["clock"] = None
        state["sink"] = None
        state["_taps"] = []
        state["_next_id"] = max(
            (s.span_id for s in self.spans), default=0
        ) + 1
        return state

    # -- sinks and taps ------------------------------------------------------------

    @property
    def spilling(self) -> bool:
        """True when closed records stream to a sink instead of the lists."""
        return self.sink is not None

    def add_tap(self, tap) -> None:
        """Register an observer for every closed span/instant/sample.

        Taps never change where records are stored — they run in both
        in-memory and sink mode, in registration order, synchronously at
        record time.
        """
        self._taps.append(tap)

    def flush(self) -> None:
        """Flush the sink (a no-op for in-memory handles).

        Instrumented loops call this at quiescent points (end of an engine
        run) so partial shards reach disk without waiting for close.
        """
        if self.sink is not None:
            self.sink.flush()

    def close(self) -> None:
        """Finalize the sink: spill the metrics registry and seal the shards.

        Idempotent; in-memory handles ignore it. After close a sink-backed
        handle accepts no further records.
        """
        if self.sink is not None:
            self.sink.close(self.metrics)

    def _guard_materialized(self, what: str) -> None:
        if self.sink is not None:
            raise ConfigurationError(
                f"{what} is unavailable on a sink-backed handle — records "
                "were spilled; aggregate from the shards instead "
                "(repro.telemetry.stream)"
            )

    # -- clock -------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the time source (the engine does this on construction)."""
        self.clock = clock

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    # -- spans -------------------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        parent: Span | None = None,
        time: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; pass the returned handle to :meth:`end`."""
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            start=self.now() if time is None else time,
            facility=facility,
            track=track,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        if self.sink is None:
            self.spans.append(span)
        return span

    def end(self, span: Span, time: float | None = None, **attrs: Any) -> Span:
        """Close a span (idempotence is an error — a span ends once)."""
        if span.end is not None:
            raise ConfigurationError(f"span {span.name!r} already ended")
        span.end = self.now() if time is None else time
        if span.end < span.start:
            raise ConfigurationError(
                f"span {span.name!r} ends before it starts"
            )
        span.attrs.update(attrs)
        if self.sink is not None:
            self.sink.emit_span(span)
        for tap in self._taps:
            tap.emit_span(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        parent: Span | None = None,
        **attrs: Any,
    ):
        """Context-manager convenience for non-generator code paths."""
        span = self.begin(
            name, category, facility=facility, track=track, parent=parent,
            **attrs,
        )
        try:
            yield span
        finally:
            self.end(span)

    def finished_spans(self, category: str | None = None) -> list[Span]:
        self._guard_materialized("finished_spans")
        return [
            s for s in self.spans
            if s.finished and (category is None or s.category == category)
        ]

    # -- instants and samples ----------------------------------------------------

    def instant(
        self,
        name: str,
        category: str,
        *,
        facility: str = "sim",
        track: str = "main",
        time: float | None = None,
        **attrs: Any,
    ) -> InstantEvent:
        event = InstantEvent(
            time=self.now() if time is None else time,
            name=name,
            category=category,
            facility=facility,
            track=track,
            attrs=dict(attrs),
        )
        if self.sink is None:
            self.instants.append(event)
        else:
            self.sink.emit_instant(event)
        for tap in self._taps:
            tap.emit_instant(event)
        return event

    def sample(
        self,
        resource: str,
        value: float,
        capacity: float | None = None,
        *,
        facility: str = "sim",
        time: float | None = None,
    ) -> None:
        """Record one occupancy/queue-depth sample for a counter track."""
        sample = CounterSample(
            time=self.now() if time is None else time,
            resource=resource,
            value=value,
            capacity=capacity,
            facility=facility,
        )
        if self.sink is None:
            self.samples.append(sample)
        else:
            self.sink.emit_sample(sample)
        for tap in self._taps:
            tap.emit_sample(sample)

    # -- shard merging -----------------------------------------------------------

    def absorb(
        self,
        other: "Telemetry",
        parent: Span | None = None,
        suffix: str | None = None,
    ) -> None:
        """Fold a shard's telemetry into this handle, keeping the tree valid.

        Span ids are re-issued from this handle's counter with parent links
        remapped (a parent is always begun before its children, so the
        mapping is complete by the time a child arrives); ``parent``
        optionally re-roots the shard's top-level spans under a span of this
        handle. Instants and counter samples append; metrics merge via
        :meth:`MetricsRegistry.merge`. The absorbed handle must be
        discarded afterwards — its records now belong to this one.

        ``suffix`` namespaces the absorbed records — appended to every
        facility and counter-resource name. Replica merges need it: each
        replica re-runs the same simulated timeline, so without distinct
        resource names their occupancy samples would interleave
        non-monotonically (and their Perfetto tracks would overlap).

        Sink-aware: when *this* handle spills to a sink, the absorbed
        shard's finished spans, instants and samples are emitted straight
        to the sink (and taps) instead of the lists — the shard-merge path
        the exec fabric's replica ensembles ride stays O(1) in merged-trace
        memory. The absorbed handle itself must be in-memory (its records
        have to be readable to merge).
        """
        import dataclasses

        if other.sink is not None:
            raise ConfigurationError(
                "cannot absorb a sink-backed handle — its records were "
                "spilled; merge its shard files instead"
            )
        mapping: dict[int, int] = {}
        for span in other.spans:
            new_id = self._next_id
            self._next_id += 1
            mapping[span.span_id] = new_id
            span.span_id = new_id
            if span.parent_id is not None:
                if span.parent_id not in mapping:
                    raise ConfigurationError(
                        f"span {span.name!r} references parent "
                        f"#{span.parent_id} outside the absorbed handle"
                    )
                span.parent_id = mapping[span.parent_id]
            elif parent is not None:
                span.parent_id = parent.span_id
            if suffix:
                span.facility = f"{span.facility}{suffix}"
            if self.sink is None:
                self.spans.append(span)
            elif span.finished:
                # an unfinished span could still be ended via the merged
                # handle in list mode, but a sink only ever sees closed
                # records — finish spans before absorbing into a spiller
                self.sink.emit_span(span)
            if span.finished:
                for tap in self._taps:
                    tap.emit_span(span)
        instants = other.instants
        samples = other.samples
        if suffix:
            instants = [
                dataclasses.replace(e, facility=f"{e.facility}{suffix}")
                for e in other.instants
            ]
            samples = [
                dataclasses.replace(
                    s,
                    facility=f"{s.facility}{suffix}",
                    resource=f"{s.resource}{suffix}",
                )
                for s in other.samples
            ]
        if self.sink is None:
            self.instants.extend(instants)
            self.samples.extend(samples)
        for event in instants:
            if self.sink is not None:
                self.sink.emit_instant(event)
            for tap in self._taps:
                tap.emit_instant(event)
        for sample in samples:
            if self.sink is not None:
                self.sink.emit_sample(sample)
            for tap in self._taps:
                tap.emit_sample(sample)
        self.metrics.merge(other.metrics)

    # -- derived views -----------------------------------------------------------

    def sampled_resources(self) -> list[str]:
        """Resource names with samples, in first-appearance order."""
        self._guard_materialized("sampled_resources")
        seen: dict[str, None] = {}
        for s in self.samples:
            seen.setdefault(s.resource, None)
        return list(seen)

    def utilization(self, resource: str) -> UtilizationTimeline:
        """The occupancy step function recorded for ``resource``."""
        self._guard_materialized("utilization")
        return UtilizationTimeline.from_samples(resource, self.samples)
