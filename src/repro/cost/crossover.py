"""Section VI-B crossover analysis: where does communication overtake compute?

The paper's Table III argument — ResNet-50's 102.4 MB gradient costs ~8 ms to
allreduce while BERT-large's 1.4 GB costs ~110 ms — generalises to a surface:
for each (model size, node count, link bandwidth) point, compare the
alpha-beta allreduce cost against the per-step compute budget. The
:class:`DataParallelCrossoverModel` evaluates that comparison, and
:func:`crossover_sweep` maps the whole surface in one vectorized pass.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

import numpy as np

from repro.cost import kernels
from repro.cost.model import AnalyticCostModel
from repro.cost.sweep import SweepResult, sweep

__all__ = [
    "DataParallelCrossoverModel",
    "crossover_sweep",
    "machine_crossover_sweep",
    "crossover_nodes",
]


class DataParallelCrossoverModel(AnalyticCostModel):
    """Communication-vs-compute balance for synchronous data parallelism.

    Generic over any model: the configuration carries the gradient message
    size and the per-step compute time directly, so the same instance sweeps
    ResNet-50, BERT-large, or a continuum of synthetic sizes.
    """

    name = "dp_crossover"
    requires = ("message_bytes", "n_ranks", "latency", "bandwidth",
                "compute_time")
    defaults = {"allreduce_algorithm": "ring"}
    provenance = {
        "comm": "allreduce alpha-beta cost at n_ranks (Sec. VI-B)",
        "compute": "per-step compute budget",
        "comm_compute_ratio": "comm / compute; > 1 means comm-bound",
        "paper_estimate": "message / (B/2) — the paper's closed form",
    }
    critical = ("compute", "comm")

    def _terms(self, c: Mapping[str, Any]) -> dict[str, Any]:
        kernels.check_participants(c["n_ranks"], c["message_bytes"])
        comm = kernels.allreduce_time(
            c["n_ranks"], c["message_bytes"], c["latency"], c["bandwidth"],
            c["allreduce_algorithm"],
        )
        return {
            "comm": comm,
            "compute": c["compute_time"],
            "comm_compute_ratio": comm / c["compute_time"],
            "paper_estimate": kernels.paper_allreduce_estimate(
                c["message_bytes"], c["bandwidth"]
            ),
        }


def crossover_sweep(
    message_bytes: Any,
    n_ranks: Any,
    bandwidth: Any,
    latency: float,
    compute_time: float,
    algorithm: str | None = "ring",
    n_jobs: int = 1,
    cache: Any = None,
) -> SweepResult:
    """Map the crossover surface over (message size x ranks x bandwidth).

    Any of the first three arguments may be a 1-D sequence (becoming a grid
    axis) or a scalar (held fixed). Returns a :class:`SweepResult` whose
    ``comm_compute_ratio`` term locates the comm-bound region.

    ``n_jobs`` / ``cache`` are forwarded to :func:`repro.cost.sweep`.
    """
    grid: dict[str, Any] = {}
    fixed: dict[str, Any] = {
        "latency": latency,
        "compute_time": compute_time,
        "allreduce_algorithm": algorithm,
    }
    for name, value in (
        ("message_bytes", message_bytes),
        ("n_ranks", n_ranks),
        ("bandwidth", bandwidth),
    ):
        if np.ndim(value) == 1:
            grid[name] = value
        else:
            fixed[name] = value
    return sweep(
        DataParallelCrossoverModel(), grid, n_jobs=n_jobs, cache=cache, **fixed
    )


def machine_crossover_sweep(
    message_bytes: Any,
    n_ranks: Any,
    machine: Any = None,
    compute_time: float = 0.1,
    algorithm: str | None = "ring",
    n_jobs: int = 1,
    cache: Any = None,
) -> SweepResult:
    """The Section VI-B crossover surface recomputed for one machine.

    ``machine`` is a registry name or :class:`~repro.machine.spec.MachineSpec`
    (default Summit); its injection latency and aggregate bandwidth replace
    the Summit globals, so the same surface answers "where does allreduce
    overtake compute on a Frontier-class fabric?".
    """
    from repro.machine.spec import resolve_machine

    spec = resolve_machine(machine)
    return crossover_sweep(
        message_bytes,
        n_ranks,
        bandwidth=spec.injection_bandwidth,
        latency=spec.injection_latency,
        compute_time=compute_time,
        algorithm=algorithm,
        n_jobs=n_jobs,
        cache=cache,
    )


def crossover_nodes(result: SweepResult) -> np.ndarray:
    """Node counts where allreduce first overtakes compute, over the
    remaining axes of a :func:`crossover_sweep` with an ``n_ranks`` axis."""
    return result.crossover_along("n_ranks", "compute", "comm")
