"""Analytic cost models for MPI-style collectives.

These are the standard alpha-beta cost expressions (Thakur et al.,
Rabenseifner) that underpin Section VI-B of the paper:

    ring allreduce:  t = 2 (p-1) alpha  +  2 (p-1)/p * M / B

so for large ``p`` the achieved *algorithmic* bandwidth tends to ``B / 2`` —
on Summit 25 GB/s injection becomes 12.5 GB/s, making a 100 MB ResNet-50
gradient take ~8 ms and a 1.4 GB BERT-large gradient ~110 ms per step.

All functions take the number of participants ``p``, the message size in
bytes ``M``, and a :class:`~repro.network.link.LinkSpec` describing the
injection link. The formulas themselves live in :mod:`repro.cost.kernels`
(shared with the vectorized sweep path); this module is the LinkSpec-typed
adapter.
"""

from __future__ import annotations

import enum
import math

from repro.cost import kernels
from repro.errors import ConfigurationError
from repro.network.link import LinkSpec


class AllreduceAlgorithm(enum.Enum):
    RING = "ring"
    RECURSIVE_DOUBLING = "recursive_doubling"
    BINOMIAL_TREE = "binomial_tree"


def _check(p: int, size_bytes: float) -> None:
    kernels.check_participants(p, size_bytes)


def ring_allreduce_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Ring allreduce: reduce-scatter pass plus allgather pass.

    ``t = 2 (p-1) alpha + 2 (p-1)/p * M / B``. Each element crosses each
    rank's injection link twice, so the asymptotic algorithmic bandwidth is
    half the link bandwidth.
    """
    _check(p, size_bytes)
    return kernels.ring_allreduce_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


def recursive_doubling_allreduce_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Recursive doubling: log2(p) rounds, full message each round.

    Latency-optimal (log p alpha terms) but moves ``log2(p) * M`` bytes, so
    it loses to the ring for large messages. Non-power-of-two participant
    counts pay one extra fold-in round.
    """
    _check(p, size_bytes)
    return kernels.recursive_doubling_allreduce_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


def binomial_tree_allreduce_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Binomial reduce to a root followed by binomial broadcast."""
    _check(p, size_bytes)
    return kernels.binomial_tree_allreduce_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


_ALGORITHMS = {
    AllreduceAlgorithm.RING: ring_allreduce_time,
    AllreduceAlgorithm.RECURSIVE_DOUBLING: recursive_doubling_allreduce_time,
    AllreduceAlgorithm.BINOMIAL_TREE: binomial_tree_allreduce_time,
}


def allreduce_time(
    p: int,
    size_bytes: float,
    link: LinkSpec,
    algorithm: AllreduceAlgorithm | None = AllreduceAlgorithm.RING,
) -> float:
    """Allreduce cost under ``algorithm``; ``None`` picks the fastest.

    Production MPI/NCCL implementations switch algorithms on message size —
    passing ``None`` reproduces that tuned behaviour.
    """
    return kernels.allreduce_time(
        p,
        size_bytes,
        link.latency,
        link.total_bandwidth,
        None if algorithm is None else algorithm.value,
    )


def best_allreduce_algorithm(
    p: int, size_bytes: float, link: LinkSpec
) -> AllreduceAlgorithm:
    """The algorithm with the lowest modelled cost for this (p, M, link)."""
    _check(p, size_bytes)
    return min(_ALGORITHMS, key=lambda a: _ALGORITHMS[a](p, size_bytes, link))


def reduce_scatter_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Ring reduce-scatter: ``(p-1) alpha + (p-1)/p * M / B``."""
    _check(p, size_bytes)
    return kernels.reduce_scatter_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


def allgather_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Ring allgather of a ``size_bytes`` total result."""
    _check(p, size_bytes)
    return kernels.allgather_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


def broadcast_time(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Scatter + allgather broadcast (van de Geijn), bandwidth-optimal for
    large messages: ~``2 M / B`` with ``log p + p`` latency terms."""
    _check(p, size_bytes)
    return kernels.broadcast_time(
        p, size_bytes, link.latency, link.total_bandwidth
    )


def paper_allreduce_estimate(size_bytes: float, link: LinkSpec) -> float:
    """The paper's back-of-envelope allreduce time: message size over half
    the injection bandwidth, ignoring latency terms.

    Section VI-B: "the algorithm (ring-based allreduce) bandwidth being half
    of network bandwidth, i.e., 12.5 GB/s, communication time is roughly
    8 ms and 110 ms" for ResNet-50 (100 MB) and BERT-large (1.4 GB).
    """
    if size_bytes < 0:
        raise ConfigurationError(f"negative message size: {size_bytes}")
    return kernels.paper_allreduce_estimate(size_bytes, link.total_bandwidth)


def algorithmic_bandwidth(p: int, size_bytes: float, link: LinkSpec) -> float:
    """Achieved allreduce bytes/s (message size over ring-allreduce time).

    Tends to ``link.total_bandwidth / 2`` as ``p`` and ``M`` grow — the
    12.5 GB/s the paper quotes for Summit.
    """
    if size_bytes <= 0:
        raise ConfigurationError("message size must be positive")
    t = ring_allreduce_time(p, size_bytes, link)
    if t == 0.0:
        return math.inf
    return size_bytes / t
