"""Checkpoint cost model (Young/Daly) over the storage hierarchy.

Long training jobs on a leadership machine must checkpoint; where the
checkpoint goes (node-local NVMe vs the shared filesystem) and how often
are classic trade-offs. The optimum interval is Young's approximation
``tau* = sqrt(2 * delta * MTBF)`` (refined by Daly), where ``delta`` is the
checkpoint write time. The model quantifies another advantage of the burst
buffer the paper highlights: cheap checkpoints mean shorter optimal
intervals and less lost work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cost import kernels
from repro.errors import ConfigurationError
from repro.storage.burst_buffer import BurstBuffer
from repro.storage.filesystem import SharedFileSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class CheckpointPlan:
    """A checkpoint configuration for a distributed job."""

    state_bytes_per_node: float
    n_nodes: int
    node_mtbf_seconds: float  # mean time between failures of ONE node

    def __post_init__(self) -> None:
        if self.state_bytes_per_node <= 0:
            raise ConfigurationError("state size must be positive")
        if self.n_nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.node_mtbf_seconds <= 0:
            raise ConfigurationError("MTBF must be positive")

    @property
    def system_mtbf(self) -> float:
        """Job-wide MTBF: failures compose across nodes."""
        return kernels.system_mtbf(self.node_mtbf_seconds, self.n_nodes)

    def write_time_nvme(self, nvme: BurstBuffer) -> float:
        """Checkpoint to node-local NVMe: each node writes independently."""
        return self.state_bytes_per_node / nvme.write_bandwidth

    def write_time_shared(self, fs: SharedFileSystem) -> float:
        """Checkpoint to the shared FS: nodes share aggregate bandwidth."""
        per_node = kernels.shared_pool_bandwidth(
            fs.aggregate_write_bandwidth,
            fs.per_client_read_bandwidth,  # symmetric client cap
            self.n_nodes,
        )
        return self.state_bytes_per_node / per_node

    def optimal_interval(self, write_time: float) -> float:
        """Young's optimal checkpoint interval: sqrt(2 * delta * MTBF)."""
        if write_time <= 0:
            raise ConfigurationError("write time must be positive")
        return kernels.young_interval(write_time, self.system_mtbf)

    def overhead_fraction(self, write_time: float, interval: float | None = None) -> float:
        """Expected fraction of wall-clock lost to checkpointing + rework.

        First-order model: checkpoint cost ``delta / tau`` plus expected
        rework ``(tau / 2 + delta) / MTBF``.
        """
        if write_time <= 0:
            raise ConfigurationError("write time must be positive")
        tau = interval if interval is not None else self.optimal_interval(write_time)
        if tau <= 0:
            raise ConfigurationError("interval must be positive")
        return kernels.young_overhead(write_time, tau, self.system_mtbf)

    def compare_tiers(
        self, nvme: BurstBuffer, fs: SharedFileSystem
    ) -> dict[str, dict[str, float]]:
        """Optimal-interval overhead on each storage tier."""
        out = {}
        for name, write_time in (
            ("nvme", self.write_time_nvme(nvme)),
            ("shared_fs", self.write_time_shared(fs)),
        ):
            out[name] = {
                "write_time": write_time,
                "optimal_interval": self.optimal_interval(write_time),
                "overhead": self.overhead_fraction(write_time),
            }
        return out

    def compare_machine_tiers(
        self, machine: "MachineSpec | str | None" = None
    ) -> dict[str, dict[str, float]]:
        """Tier comparison against ``machine``'s storage hierarchy (default
        Summit); machines without node-local NVMe report only the shared
        filesystem tier."""
        from repro.machine.spec import resolve_machine

        spec = resolve_machine(machine)
        if spec.has_nvme:
            return self.compare_tiers(spec.nvme, spec.shared_fs)
        write_time = self.write_time_shared(spec.shared_fs)
        return {
            "shared_fs": {
                "write_time": write_time,
                "optimal_interval": self.optimal_interval(write_time),
                "overhead": self.overhead_fraction(write_time),
            }
        }
