"""Evolutionary hyperparameter search (Patton et al., GB 2018).

Section IV-A.2: "hyperparameter tuning for DNNs to find defect structures
in microscopy images (scalability to 4200 nodes, measured 152.5 PF)" — the
MENNDL system, which evolves network topologies with a genetic algorithm,
evaluating a population of candidate networks in parallel across the
machine.

Laptop-scale reproduction: a GA over MLP hyperparameters (depth, width,
activation, learning rate), each genome evaluated by actually training the
network on a held-out classification task (two-moons). The parallel
evaluation cost is also modelled as a workflow: one facility task per
candidate per generation, giving the machine-level throughput the paper's
numbers come from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.data import two_moons
from repro.ml.ga import GeneticAlgorithm
from repro.ml.losses import softmax_cross_entropy
from repro.ml.mlp import MLP
from repro.optim.sgd import SGD
from repro.workflows.dag import TaskGraph
from repro.workflows.facility import Facility

#: Genome layout: [depth_idx, width_idx, activation_idx, lr_idx]
DEPTH_CHOICES = (1, 2, 3)
WIDTH_CHOICES = (4, 8, 16, 32)
ACTIVATION_CHOICES = ("relu", "tanh")
LR_CHOICES = (0.003, 0.01, 0.03, 0.1)

GENOME_LENGTH = 4
N_ALLELES = max(
    len(DEPTH_CHOICES), len(WIDTH_CHOICES), len(ACTIVATION_CHOICES), len(LR_CHOICES)
)


def decode(genome: np.ndarray) -> dict:
    """Map an integer genome to concrete hyperparameters (indices wrap)."""
    genome = np.asarray(genome, dtype=int)
    if genome.shape != (GENOME_LENGTH,):
        raise ConfigurationError(f"genome must have length {GENOME_LENGTH}")
    return {
        "depth": DEPTH_CHOICES[genome[0] % len(DEPTH_CHOICES)],
        "width": WIDTH_CHOICES[genome[1] % len(WIDTH_CHOICES)],
        "activation": ACTIVATION_CHOICES[genome[2] % len(ACTIVATION_CHOICES)],
        "lr": LR_CHOICES[genome[3] % len(LR_CHOICES)],
    }


@dataclass
class NasResult:
    """Outcome of a hyperparameter-evolution campaign."""

    best_hyperparameters: dict
    best_accuracy: float
    random_search_accuracy: float  # equal-budget baseline
    evaluations: int
    history: list[float]


class HyperparameterSearch:
    """GA-driven hyperparameter optimisation on a real training task."""

    def __init__(
        self,
        n_train: int = 300,
        n_test: int = 200,
        train_epochs: int = 60,
        seed: int = 0,
    ):
        if n_train < 10 or n_test < 10:
            raise ConfigurationError("need at least 10 train/test samples")
        self.train_epochs = train_epochs
        self.seed = seed
        self.x_train, self.y_train = two_moons(n_train, seed=seed)
        self.x_test, self.y_test = two_moons(n_test, seed=seed + 1)
        self.evaluations = 0

    def evaluate(self, genome: np.ndarray) -> float:
        """Train the decoded network; return held-out accuracy."""
        params = decode(genome)
        layers = [2] + [params["width"]] * params["depth"] + [2]
        net = MLP(layers, hidden_activation=params["activation"], seed=self.seed)
        opt = SGD(lr=params["lr"], momentum=0.9)
        rng = np.random.default_rng(self.seed)
        n = self.x_train.shape[0]
        for _ in range(self.train_epochs):
            order = rng.permutation(n)
            for start in range(0, n, 32):
                idx = order[start:start + 32]
                logits = net.forward(self.x_train[idx])
                _, grad = softmax_cross_entropy(logits, self.y_train[idx])
                net.backward(grad)
                opt.step(net.parameters, net.gradients)
        self.evaluations += 1
        pred = net.forward(self.x_test).argmax(axis=1)
        return float((pred == self.y_test).mean())

    def _batch_fitness(self, population: np.ndarray) -> np.ndarray:
        return np.array([self.evaluate(g) for g in population])

    def run(self, population: int = 12, generations: int = 4) -> NasResult:
        """Evolve hyperparameters; compare against equal-budget random search."""
        ga = GeneticAlgorithm(
            genome_length=GENOME_LENGTH,
            n_alleles=N_ALLELES,
            population=population,
            mutation_rate=0.2,
            seed=self.seed,
        )
        result = ga.run(self._batch_fitness, generations=generations)

        # equal-budget random search baseline
        rng = np.random.default_rng(self.seed + 99)
        budget = result.evaluations
        random_best = 0.0
        for _ in range(budget):
            genome = rng.integers(0, N_ALLELES, size=GENOME_LENGTH)
            random_best = max(random_best, self.evaluate(genome))

        return NasResult(
            best_hyperparameters=decode(result.best_genome),
            best_accuracy=result.best_fitness,
            random_search_accuracy=random_best,
            evaluations=self.evaluations,
            history=result.history,
        )

    @staticmethod
    def campaign_graph(
        population: int = 12,
        generations: int = 4,
        eval_minutes: float = 30.0,
        nodes_per_eval: int = 1,
        machine_nodes: int = 4200,
    ) -> TaskGraph:
        """The machine-level shape of a MENNDL-style campaign: each
        generation evaluates its whole population in parallel, gated on the
        previous generation's selection step."""
        graph = TaskGraph({
            "summit": Facility(name="Summit", nodes=machine_nodes),
        })
        for g in range(generations):
            deps = (f"select-{g - 1}",) if g else ()
            for i in range(population):
                graph.add_task(
                    f"eval-{g}-{i}", eval_minutes * 60.0, "summit",
                    nodes=nodes_per_eval, deps=deps,
                )
            graph.add_task(
                f"select-{g}", 60.0, "summit", nodes=1,
                deps=tuple(f"eval-{g}-{i}" for i in range(population)),
            )
        return graph
