"""Shared parallel-filesystem model (Summit's GPFS/Alpine).

The file system is modelled as a shared bandwidth pool: ``n`` concurrent
readers each achieve ``min(per_client_cap, aggregate / n)``. Random-access
(shuffled) reads are derated by a configurable factor relative to streaming,
reflecting the "iterative random access" I/O pattern of AI/ML workloads the
paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cost import kernels
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class SharedFileSystem:
    """A site-wide shared filesystem characterised by aggregate bandwidths.

    Parameters
    ----------
    aggregate_read_bandwidth / aggregate_write_bandwidth:
        Total deliverable bytes/s across all clients (GPFS on Summit reads at
        ~2.5 TB/s).
    per_client_read_bandwidth:
        Cap on any single node's achievable read rate.
    random_read_derate:
        Multiplier (0, 1] applied to read bandwidth for random-access
        patterns; small-file random reads on GPFS achieve well under the
        streaming rate.
    capacity_bytes:
        Usable capacity.
    """

    name: str
    aggregate_read_bandwidth: float
    aggregate_write_bandwidth: float
    per_client_read_bandwidth: float
    capacity_bytes: float
    random_read_derate: float = 0.4

    def __post_init__(self) -> None:
        for field_name in (
            "aggregate_read_bandwidth",
            "aggregate_write_bandwidth",
            "per_client_read_bandwidth",
            "capacity_bytes",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigurationError(f"{self.name}: {field_name} must be positive")
        if not 0 < self.random_read_derate <= 1:
            raise ConfigurationError(
                f"{self.name}: random_read_derate must be in (0, 1]"
            )

    def read_bandwidth(self, n_clients: int, random_access: bool = False) -> float:
        """Per-client achieved read bytes/s with ``n_clients`` concurrent readers."""
        if n_clients < 1:
            raise ConfigurationError("need at least one client")
        aggregate = self.aggregate_read_bandwidth
        if random_access:
            aggregate *= self.random_read_derate
        return kernels.shared_pool_bandwidth(
            aggregate, self.per_client_read_bandwidth, n_clients
        )

    def read_time(
        self, size_bytes: float, n_clients: int = 1, random_access: bool = False
    ) -> float:
        """Seconds for each of ``n_clients`` to read ``size_bytes``."""
        if size_bytes < 0:
            raise ConfigurationError(f"negative read size: {size_bytes}")
        if size_bytes == 0:
            return 0.0
        return size_bytes / self.read_bandwidth(n_clients, random_access)


def shared_filesystem(
    machine: "MachineSpec | str | None" = None,
) -> SharedFileSystem:
    """The center-wide filesystem of ``machine`` (default Summit's Alpine)."""
    from repro.machine.spec import resolve_machine

    return resolve_machine(machine).shared_fs


# ``SUMMIT_GPFS`` — Alpine, 2.5 TB/s read, 250 PB — resolves lazily (PEP 562)
# from the machine registry, which imports this module for the class above.


def __getattr__(name: str) -> SharedFileSystem:
    if name == "SUMMIT_GPFS":
        from repro.machine.spec import SUMMIT

        return SUMMIT.shared_fs
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | {"SUMMIT_GPFS"})
