"""Exporters: Chrome trace-event JSON, JSON-lines, and a text summary.

``chrome_trace`` emits the Trace Event Format understood by Perfetto and
``chrome://tracing``: one trace *process* per facility, one *thread* (track)
per node/resource/task, complete ``X`` events for spans, process-scoped
``i`` instants for fault injections and requeues, and ``C`` counter tracks
for resource occupancy. Timestamps are microseconds of simulated time.

All exporters are deterministic: pids and tids are assigned in first-
appearance order, records serialize in record order, and the JSON encoder
uses sorted keys and fixed separators — identical runs produce
byte-identical files (the property the test suite pins).
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.context import Telemetry

#: Seconds -> trace microseconds.
_US = 1e6


def _clean(attrs: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe args: scalars pass through, anything else goes via repr."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


class _Layout:
    """First-appearance-ordered pid/tid assignment."""

    def __init__(self) -> None:
        self.pids: dict[str, int] = {}
        self.tids: dict[tuple[str, str], int] = {}

    def pid(self, facility: str) -> int:
        if facility not in self.pids:
            self.pids[facility] = len(self.pids) + 1
        return self.pids[facility]

    def tid(self, facility: str, track: str) -> int:
        key = (facility, track)
        if key not in self.tids:
            # tids restart at 1 within each facility
            n_in_facility = sum(1 for f, _ in self.tids if f == facility)
            self.tids[key] = n_in_facility + 1
        return self.tids[key]


def chrome_trace(telemetry: Telemetry) -> dict:
    """The trace as a Trace-Event-Format object (``traceEvents`` + units)."""
    layout = _Layout()
    spans = []
    for span in telemetry.spans:
        if not span.finished:
            continue
        assert span.end is not None
        spans.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": layout.pid(span.facility),
            "tid": layout.tid(span.facility, span.track),
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "args": _clean({"span_id": span.span_id,
                            "parent_id": span.parent_id, **span.attrs}),
        })
    instants = [
        {
            "ph": "i",
            "s": "p",
            "name": event.name,
            "cat": event.category,
            "pid": layout.pid(event.facility),
            "tid": layout.tid(event.facility, event.track),
            "ts": event.time * _US,
            "args": _clean(event.attrs),
        }
        for event in telemetry.instants
    ]
    counters = [
        {
            "ph": "C",
            "name": sample.resource,
            "pid": layout.pid(sample.facility),
            "tid": 0,
            "ts": sample.time * _US,
            "args": {"in_use": sample.value},
        }
        for sample in telemetry.samples
    ]
    metadata = []
    for facility, pid in layout.pids.items():
        metadata.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": facility},
        })
    for (facility, track), tid in layout.tids.items():
        metadata.append({
            "ph": "M", "name": "thread_name",
            "pid": layout.pids[facility], "tid": tid,
            "args": {"name": track},
        })
        metadata.append({
            "ph": "M", "name": "thread_sort_index",
            "pid": layout.pids[facility], "tid": tid,
            "args": {"sort_index": tid},
        })
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [*metadata, *spans, *instants, *counters],
    }


def chrome_trace_json(telemetry: Telemetry) -> str:
    """Byte-stable serialization of :func:`chrome_trace`."""
    return json.dumps(
        chrome_trace(telemetry), sort_keys=True, separators=(",", ":")
    )


def write_chrome_trace(telemetry: Telemetry, path: str) -> None:
    """Write a ``.trace.json`` loadable in Perfetto / chrome://tracing.

    Written atomically (tmp + rename) so an interrupted export never leaves
    a torn, unparseable trace behind.
    """
    from repro.atomicio import atomic_write_text

    atomic_write_text(path, chrome_trace_json(telemetry) + "\n")


def to_jsonl(telemetry: Telemetry) -> str:
    """One JSON object per line: spans, instants, samples, then metrics."""
    lines = []
    for span in telemetry.spans:
        if not span.finished:
            continue
        lines.append({
            "type": "span", "id": span.span_id, "name": span.name,
            "cat": span.category, "facility": span.facility,
            "track": span.track, "start": span.start, "end": span.end,
            "parent": span.parent_id, "attrs": _clean(span.attrs),
        })
    for event in telemetry.instants:
        lines.append({
            "type": "instant", "name": event.name, "cat": event.category,
            "facility": event.facility, "track": event.track,
            "time": event.time, "attrs": _clean(event.attrs),
        })
    for sample in telemetry.samples:
        lines.append({
            "type": "sample", "resource": sample.resource,
            "time": sample.time, "value": sample.value,
            "capacity": sample.capacity,
        })
    for name, data in telemetry.metrics.as_dict().items():
        lines.append({"type": "metric", "name": name, **data})
    return "\n".join(
        json.dumps(line, sort_keys=True, separators=(",", ":"))
        for line in lines
    )


def summary(telemetry: Telemetry) -> str:
    """Plain-text run summary: spans by category, utilization, metrics."""
    finished = telemetry.finished_spans()
    by_cat: dict[str, list[float]] = {}
    for span in finished:
        by_cat.setdefault(span.category, []).append(span.duration)
    lines = [
        "Telemetry summary",
        f"  spans                {len(finished)} complete / "
        f"{len(telemetry.spans)} recorded",
        f"  instant events       {len(telemetry.instants)}",
    ]
    for cat in sorted(by_cat):
        durations = by_cat[cat]
        lines.append(
            f"    {cat:<18} n={len(durations):<6} "
            f"total={sum(durations):.6g} s  "
            f"mean={sum(durations) / len(durations):.6g} s"
        )
    resources = telemetry.sampled_resources()
    if resources:
        lines.append("  utilization")
        for name in resources:
            timeline = telemetry.utilization(name)
            lines.append(
                f"    {name:<18} busy={timeline.busy_time():.6g} node-s  "
                f"util={timeline.utilization():.1%}  "
                f"peak={timeline.peak():g}/{timeline.capacity:g}"
            )
    if len(telemetry.metrics):
        lines.append("  metrics")
        lines.extend("  " + line for line in telemetry.metrics.summary_lines())
    return "\n".join(lines)
