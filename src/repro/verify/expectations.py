"""The expectation registry: every paper-stated quantity, machine-readable.

Each :class:`Expectation` carries the paper's value, the comparison rule
(tolerance, bound or exact equality), units, and provenance — both *where*
in the paper the number comes from (``paper``) and *how firmly* the paper
commits to it (``provenance``: ``stated`` / ``estimated`` / ``structural``,
the convention of :mod:`repro.portfolio.reference`) — plus the measurement
that reproduces it from this codebase. The registry is the single gate
proving the whole reproduction still matches the paper after a refactor:
``repro verify`` runs it end to end, ``tests/test_conformance.py`` runs it
as tier-1 tests, and benchmark records embed per-scalar verdicts via
:func:`verdicts_for`.

Comparisons are self-contained, so an expectation can also judge an
externally measured value:

>>> e = Expectation(
...     key="demo.active_third", section="demo",
...     description="about 1/3 of projects actively use AI",
...     paper="Fig. 1 / Sec. III", provenance="stated",
...     expected=1 / 3, cmp="approx", rel_tol=0.05,
...     measure=lambda ctx: 208 / 645)
>>> r = e.compare(208 / 645)
>>> (r.passed, round(r.rel_error, 3))
(True, 0.033)
>>> bound = Expectation(
...     key="demo.nvme", section="demo",
...     description="NVMe aggregate read over 27 TB/s",
...     paper="Sec. VI-B", provenance="stated",
...     expected=27e12, cmp="gt", units="B/s",
...     measure=lambda ctx: 27.6e12)
>>> bound.compare(2e12).passed
False
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = [
    "BENCH_BINDINGS",
    "CheckResult",
    "Expectation",
    "VerifyContext",
    "build_registry",
    "expectation_sections",
    "get_expectation",
    "verdicts_for",
]

#: Comparison rules an expectation may use.
_COMPARISONS = ("approx", "exact", "gt", "ge", "lt", "le", "true")


@dataclass(frozen=True)
class CheckResult:
    """Outcome of measuring one expectation."""

    key: str
    section: str
    description: str
    paper: str
    provenance: str
    units: str
    cmp: str
    expected: Any
    measured: Any
    rel_error: float | None
    passed: bool

    def as_dict(self) -> dict:
        """JSON-serialisable record (numpy scalars coerced to Python)."""
        out = dataclasses.asdict(self)
        for k in ("expected", "measured", "rel_error"):
            v = out[k]
            if hasattr(v, "item"):
                out[k] = v.item()
        return out

    def message(self) -> str:
        """One-line paper-vs-measured verdict for assertion messages."""
        err = "" if self.rel_error is None else f" (rel. err {self.rel_error:.3%})"
        return (
            f"{self.key} [{self.paper}]: paper {self.cmp} {self.expected!r} "
            f"{self.units}, measured {self.measured!r}{err} -> "
            f"{'PASS' if self.passed else 'FAIL'}"
        )


@dataclass(frozen=True)
class Expectation:
    """One paper-stated quantity with its reproduction measurement.

    ``cmp`` selects the rule: ``approx`` (within ``rel_tol``/``abs_tol``),
    ``exact`` (equality — integers, enum counts, booleans), one-sided bounds
    (``gt``/``ge``/``lt``/``le`` against ``expected``), or ``true`` (the
    measurement itself is the pass/fail boolean and ``expected`` is True).
    """

    key: str
    section: str
    description: str
    paper: str
    provenance: str  # stated | estimated | structural
    expected: Any
    measure: Callable[["VerifyContext"], Any] = field(repr=False, compare=False)
    cmp: str = "approx"
    rel_tol: float | None = None
    abs_tol: float | None = None
    units: str = ""

    def __post_init__(self) -> None:
        if self.cmp not in _COMPARISONS:
            raise ConfigurationError(
                f"{self.key}: unknown comparison {self.cmp!r}"
            )
        if self.cmp == "approx" and self.rel_tol is None and self.abs_tol is None:
            raise ConfigurationError(
                f"{self.key}: 'approx' needs rel_tol and/or abs_tol"
            )
        if self.provenance not in ("stated", "estimated", "structural"):
            raise ConfigurationError(
                f"{self.key}: unknown provenance {self.provenance!r}"
            )

    def compare(self, measured: Any) -> CheckResult:
        """Judge an already-measured value against this expectation."""
        rel_error: float | None = None
        if self.cmp == "true":
            passed = bool(measured) is True
        elif self.cmp == "exact":
            passed = bool(measured == self.expected)
            rel_error = self._rel_error(measured)
        elif self.cmp == "approx":
            rel_error = self._rel_error(measured)
            delta = abs(float(measured) - float(self.expected))
            ok_rel = (
                self.rel_tol is not None
                and rel_error is not None
                and rel_error <= self.rel_tol
            )
            ok_abs = self.abs_tol is not None and delta <= self.abs_tol
            passed = ok_rel or ok_abs
        else:  # one-sided bounds
            m, e = float(measured), float(self.expected)
            passed = {
                "gt": m > e, "ge": m >= e, "lt": m < e, "le": m <= e,
            }[self.cmp]
            rel_error = self._rel_error(measured)
        return CheckResult(
            key=self.key, section=self.section, description=self.description,
            paper=self.paper, provenance=self.provenance, units=self.units,
            cmp=self.cmp, expected=self.expected, measured=measured,
            rel_error=rel_error, passed=passed,
        )

    def _rel_error(self, measured: Any) -> float | None:
        try:
            e, m = float(self.expected), float(measured)
        except (TypeError, ValueError):
            return None
        if isinstance(self.expected, bool) or isinstance(measured, bool):
            return None
        if e == 0.0:
            return abs(m)
        return abs(m - e) / abs(e)

    def check(self, ctx: "VerifyContext") -> CheckResult:
        """Measure this expectation from the codebase and judge it."""
        return self.compare(self.measure(ctx))


class VerifyContext:
    """Shared, lazily-computed measurement substrate for the registry.

    Expensive artifacts (the calibrated portfolio, the five app
    simulations, the Section V workflow campaigns) are computed once per
    context and cached, so running the full registry costs one pass of
    each. ``seed`` drives every stochastic substrate; identical seeds give
    identical measurements.
    """

    def __init__(self, seed: int = 0, survey_seed: int = 2022):
        self.seed = seed
        self.survey_seed = survey_seed
        self._app_results: dict[str, dict] = {}

    # -- Section III: survey ------------------------------------------------------

    @cached_property
    def analytics(self):
        from repro.core import UsageSurvey

        return UsageSurvey.calibrated(seed=self.survey_seed).analytics

    @cached_property
    def overall_usage(self) -> dict:
        return self.analytics.overall_usage()

    @cached_property
    def program_year(self) -> dict:
        return self.analytics.usage_by_program_year()

    @cached_property
    def method_shares(self) -> dict:
        return self.analytics.usage_by_method()

    @cached_property
    def domain_table(self) -> dict:
        return self.analytics.usage_by_domain()

    @cached_property
    def motif_counts(self) -> dict:
        return self.analytics.usage_by_motif()

    @cached_property
    def motif_matrix(self) -> dict:
        return self.analytics.motif_by_domain()

    # -- Section IV-B: extreme scale ---------------------------------------------

    def app_result(self, key: str) -> dict:
        if key not in self._app_results:
            from repro.apps.extreme_scale import get_app

            self._app_results[key] = get_app(key).simulate()
        return self._app_results[key]

    @cached_property
    def blanchard_no_io(self) -> dict:
        import dataclasses as dc

        from repro.apps.extreme_scale import get_app
        from repro.training.parallelism import DataSource

        return dc.replace(
            get_app("blanchard"), data_source=DataSource.MEMORY
        ).simulate()

    def app_global_batch(self, key: str) -> float:
        from repro.apps.extreme_scale import get_app

        app = get_app(key)
        return float(app.job(app.peak_nodes).global_batch())

    # -- Section VI-B: hardware requirements -------------------------------------

    @cached_property
    def io_report(self) -> dict:
        from repro.core import SummitSimulator

        return SummitSimulator().io_report("resnet50")

    def allreduce_estimate(self, model_key: str) -> float:
        from repro.core import SummitSimulator

        return SummitSimulator().allreduce_estimate(model_key)

    def gradient_bytes(self, model_key: str) -> float:
        from repro.models.catalog import get_model

        return float(get_model(model_key).gradient_bytes)

    def comm_compute_ratio(self, model_key: str, local_batch: int) -> float:
        """The paper's allreduce-vs-per-batch-compute ratio (Sec. VI-B)."""
        from repro.machine.gpu import NVIDIA_V100
        from repro.models.catalog import get_model
        from repro.network.collectives import paper_allreduce_estimate
        from repro.network.link import SUMMIT_INJECTION

        model = get_model(model_key)
        comm = paper_allreduce_estimate(model.gradient_bytes, SUMMIT_INJECTION)
        return comm / model.step_compute_time(NVIDIA_V100, local_batch)

    @cached_property
    def beyond_bert_comm_fraction(self) -> float:
        """Exposed-comm share of a 2.5x-BERT at 1024 nodes, unoverlapped —
        the paper's "models larger than BERT-large become communication-
        bound" claim, measured through the full training simulator."""
        import dataclasses as dc

        from repro.machine.summit import summit
        from repro.models import bert_large
        from repro.training.job import TrainingJob
        from repro.training.parallelism import (
            AllreduceAlgorithm,
            DataSource,
            ParallelismPlan,
        )

        giant = dc.replace(
            bert_large(), parameters=2.5 * 350e6,
            activation_bytes_per_sample=48e6,
        )
        job = TrainingJob(
            giant, summit(include_high_mem=False), 1024,
            ParallelismPlan(
                local_batch=8, overlap_fraction=0.0,
                allreduce_algorithm=AllreduceAlgorithm.RING,
            ),
            data_source=DataSource.MEMORY,
        )
        return job.breakdown().comm_fraction

    @cached_property
    def staging_costs(self) -> tuple[float, float, float]:
        """(stage, epoch-read, reshuffle) seconds for full-Summit ImageNet."""
        from repro.constants import NVME_CAPACITY_BYTES, SUMMIT_NODE_COUNT
        from repro.storage.burst_buffer import SUMMIT_NVME, StagingPlan
        from repro.storage.dataset import IMAGENET, ShardingPlan
        from repro.storage.filesystem import SUMMIT_GPFS

        plan = ShardingPlan(
            IMAGENET, n_nodes=SUMMIT_NODE_COUNT,
            nvme_bytes_per_node=NVME_CAPACITY_BYTES,
        )
        staging = StagingPlan(plan, SUMMIT_GPFS, SUMMIT_NVME)
        return (
            staging.staging_time(),
            staging.epoch_read_time(),
            staging.reshuffle_time(),
        )

    # -- Section V: workflow case studies ----------------------------------------

    @cached_property
    def materials(self):
        from repro.workflows.case_materials import MaterialsWorkflow

        workflow = MaterialsWorkflow(lattice_size=12, seed=self.seed)
        return workflow.run(n_training=32, n_sweeps=60, n_warmup=60)

    @cached_property
    def biology(self):
        from repro.workflows.case_biology import MultiscaleWorkflow

        workflow = MultiscaleWorkflow(seed=self.seed)
        return workflow.run(n_windows=6, frames_per_window=8, ae_epochs=250)

    @cached_property
    def biology_campaign(self) -> tuple[float, float]:
        """(orchestrated makespan, serial time) for the 4-window campaign."""
        from repro.workflows.case_biology import MultiscaleWorkflow

        graph = MultiscaleWorkflow.campaign_graph(n_windows=4)
        return graph.execute().makespan, graph.serial_time()

    @cached_property
    def drug(self):
        from repro.science.docking import CompoundLibrary, DockingOracle
        from repro.workflows.case_drug import DrugDiscoveryWorkflow

        library = CompoundLibrary.random(1500, seed=4)
        workflow = DrugDiscoveryWorkflow(library, DockingOracle(seed=4), seed=4)
        return workflow.run(initial=48, per_iteration=24, n_iterations=4)


# ---------------------------------------------------------------------------
# Registry construction, one builder per paper section.
# ---------------------------------------------------------------------------


def _e(key, description, paper, provenance, expected, measure, **kw):
    section = key.split(".", 1)[0]
    return Expectation(
        key=key, section=section, description=description, paper=paper,
        provenance=provenance, expected=expected, measure=measure, **kw,
    )


def _table1() -> list[Expectation]:
    from repro.portfolio.taxonomy import MOTIF_DEFINITIONS, Motif

    return [
        _e(
            "table1.motif_taxonomy_size",
            "10 paper motifs + 1 'undetermined' bookkeeping row, all defined",
            "Table I", "stated", 11,
            lambda ctx: len(MOTIF_DEFINITIONS), cmp="exact", units="motifs",
        ),
        _e(
            "table1.definitions_complete",
            "every motif carries a definition and an example application",
            "Table I", "structural", True,
            lambda ctx: all(
                MOTIF_DEFINITIONS[m].definition and MOTIF_DEFINITIONS[m].example
                for m in Motif
            ),
            cmp="true",
        ),
        _e(
            "table1.portfolio_classified",
            "every AI project in the Fig. 5/6 cohort is motif-classified",
            "Table I / Sec. III", "structural", True,
            lambda ctx: sum(ctx.motif_counts.values()) == 117, cmp="true",
        ),
    ]


def _table2() -> list[Expectation]:
    from repro.portfolio.taxonomy import (
        DOMAIN_SUBDOMAINS,
        Domain,
        subdomain_domain,
    )

    return [
        _e(
            "table2.domain_count", "nine science domains",
            "Table II", "stated", 9,
            lambda ctx: len(list(Domain)), cmp="exact", units="domains",
        ),
        _e(
            "table2.subdomain_count", "40 listed subdomain codes",
            "Table II", "stated", 40,
            lambda ctx: sum(len(v) for v in DOMAIN_SUBDOMAINS.values()),
            cmp="exact", units="subdomains",
        ),
        _e(
            "table2.roundtrip_exact",
            "every subdomain classifies back to its own domain",
            "Table II", "structural", True,
            lambda ctx: all(
                subdomain_domain(s) is d
                for d, subs in DOMAIN_SUBDOMAINS.items() for s in subs
            ),
            cmp="true",
        ),
    ]


def _table3() -> list[Expectation]:
    from repro.apps.registry import gordon_bell_table

    def ai_count(year, category):
        return lambda ctx: gordon_bell_table()[(year, category)][1]

    entries = [
        _e(
            "table3.total_finalists",
            "17 Summit-based Gordon Bell finalist entries",
            "Table III", "stated", 17,
            lambda ctx: sum(t for t, _ in gordon_bell_table().values()),
            cmp="exact", units="finalists",
        ),
    ]
    for (year, category), ai in (
        ((2018, "std"), 3), ((2019, "std"), 0), ((2020, "std"), 1),
        ((2020, "covid"), 2), ((2021, "std"), 1), ((2021, "covid"), 3),
    ):
        entries.append(_e(
            f"table3.ai_{year}_{category}",
            f"AI/ML finalists, {year} {category} category",
            "Table III", "stated", ai, ai_count(year, category),
            cmp="exact", units="finalists",
        ))
    return entries


def _fig1() -> list[Expectation]:
    from repro.portfolio.taxonomy import AdoptionStatus

    return [
        _e(
            "fig1.active_fraction", "about 1/3 of project-years actively use AI",
            "Fig. 1 / Sec. III", "stated", 1 / 3,
            lambda ctx: ctx.overall_usage[AdoptionStatus.ACTIVE],
            rel_tol=0.05,
        ),
        _e(
            "fig1.inactive_fraction", "another ~8% show indirect/planned use",
            "Fig. 1 / Sec. III", "stated", 0.08,
            lambda ctx: ctx.overall_usage[AdoptionStatus.INACTIVE],
            abs_tol=0.005,
        ),
        _e(
            "fig1.active_calibrated", "calibrated active fraction, 208/645",
            "Fig. 1", "estimated", 208 / 645,
            lambda ctx: ctx.overall_usage[AdoptionStatus.ACTIVE],
            rel_tol=1e-12,
        ),
        _e(
            "fig1.inactive_calibrated", "calibrated inactive fraction, 52/645",
            "Fig. 1", "estimated", 52 / 645,
            lambda ctx: ctx.overall_usage[AdoptionStatus.INACTIVE],
            rel_tol=1e-12,
        ),
    ]


def _fig2() -> list[Expectation]:
    from repro.portfolio.taxonomy import AdoptionStatus, Program

    def frac(program, year, status):
        return lambda ctx: ctx.program_year[(program, year)][status]

    return [
        _e(
            "fig2.incite_2019_active", "INCITE active share was 20% in 2019",
            "Fig. 2 / Sec. VII", "stated", 0.20,
            frac(Program.INCITE, 2019, AdoptionStatus.ACTIVE), abs_tol=0.005,
        ),
        _e(
            "fig2.incite_2022_active", "INCITE active share ~31% by 2022",
            "Fig. 2 / Sec. VII", "stated", 0.31,
            frac(Program.INCITE, 2022, AdoptionStatus.ACTIVE), abs_tol=0.01,
        ),
        _e(
            "fig2.incite_2022_inactive", "plus 28% inactive INCITE use in 2022",
            "Fig. 2 / Sec. VII", "stated", 0.28,
            frac(Program.INCITE, 2022, AdoptionStatus.INACTIVE), abs_tol=0.01,
        ),
        _e(
            "fig2.covid_heavy", "COVID consortium projects use AI/ML heavily",
            "Fig. 2 / Sec. III", "stated", 0.5,
            frac(Program.COVID, 2020, AdoptionStatus.ACTIVE), cmp="ge",
        ),
        _e(
            "fig2.ecp_low", "ECP projects use AI/ML less",
            "Fig. 2 / Sec. III", "stated", 0.25,
            frac(Program.ECP, 2020, AdoptionStatus.ACTIVE), cmp="le",
        ),
        _e(
            "fig2.alcc_2019_heavy",
            "a large subset of the smaller 2019-20 ALCC cohort used AI",
            "Fig. 2 / Sec. III", "stated", 0.4,
            frac(Program.ALCC, 2019, AdoptionStatus.ACTIVE), cmp="ge",
        ),
    ]


def _fig3() -> list[Expectation]:
    from repro.portfolio.taxonomy import MLMethod

    def share(method):
        return lambda ctx: ctx.method_shares[method]

    return [
        _e(
            "fig3.dl_dominant", "DL/NN methods much more prevalent than others",
            "Fig. 3 / Sec. III", "stated", True,
            lambda ctx: (
                ctx.method_shares[MLMethod.DEEP_LEARNING]
                > ctx.method_shares[MLMethod.OTHER]
                + ctx.method_shares[MLMethod.UNDETERMINED]
            ),
            cmp="true",
        ),
        _e(
            "fig3.dl_share", "calibrated DL/NN share", "Fig. 3", "estimated",
            0.60, share(MLMethod.DEEP_LEARNING), rel_tol=1e-12,
        ),
        _e(
            "fig3.other_share", "calibrated classical-ML share", "Fig. 3",
            "estimated", 0.25, share(MLMethod.OTHER), rel_tol=1e-12,
        ),
        _e(
            "fig3.undetermined_share", "calibrated undetermined share",
            "Fig. 3", "estimated", 0.15, share(MLMethod.UNDETERMINED),
            rel_tol=1e-12,
        ),
    ]


def _fig4() -> list[Expectation]:
    from repro.portfolio.taxonomy import AdoptionStatus, Domain

    def count(domain, status):
        return lambda ctx: ctx.domain_table[domain][status]

    return [
        _e(
            "fig4.top3_domains",
            "Biology, Computer Science and Materials are the top AI users",
            "Fig. 4 / Sec. III", "stated", True,
            lambda ctx: set(ctx.analytics.top_ai_domains(3)) == {
                Domain.BIOLOGY, Domain.COMPUTER_SCIENCE, Domain.MATERIALS,
            },
            cmp="true",
        ),
        _e(
            "fig4.biology_active", "calibrated Biology active count",
            "Fig. 4", "estimated", 52,
            count(Domain.BIOLOGY, AdoptionStatus.ACTIVE), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig4.cs_active", "calibrated Computer Science active count",
            "Fig. 4", "estimated", 50,
            count(Domain.COMPUTER_SCIENCE, AdoptionStatus.ACTIVE), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig4.materials_active", "calibrated Materials active count",
            "Fig. 4", "estimated", 40,
            count(Domain.MATERIALS, AdoptionStatus.ACTIVE), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig4.engineering_inactive", "Engineering has notable inactive use",
            "Fig. 4", "estimated", 14,
            count(Domain.ENGINEERING, AdoptionStatus.INACTIVE), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig4.earth_inactive", "Earth Science has notable inactive use",
            "Fig. 4", "estimated", 9,
            count(Domain.EARTH_SCIENCE, AdoptionStatus.INACTIVE), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig4.fusion_inactive", "Fusion/Plasma has notable inactive use",
            "Fig. 4", "estimated", 8,
            count(Domain.FUSION_PLASMA, AdoptionStatus.INACTIVE), cmp="exact",
            units="project-years",
        ),
    ]


def _fig5() -> list[Expectation]:
    from repro.portfolio.taxonomy import Motif

    return [
        _e(
            "fig5.submodel_top", "Submodel is the most common motif",
            "Fig. 5 / Sec. III", "stated", True,
            lambda ctx: ctx.analytics.top_motifs(1) == [Motif.SUBMODEL],
            cmp="true",
        ),
        _e(
            "fig5.top5_concentration", "top five motifs cover over 3/4 of usage",
            "Fig. 5 / Sec. III", "stated", 0.75,
            lambda ctx: ctx.analytics.motif_concentration(5), cmp="gt",
        ),
        _e(
            "fig5.submodel_count", "calibrated Submodel count over the cohort",
            "Fig. 5", "estimated", 26,
            lambda ctx: ctx.motif_counts[Motif.SUBMODEL], cmp="exact",
            units="project-years",
        ),
        _e(
            "fig5.top5_calibrated", "calibrated top-5 coverage, 90/117",
            "Fig. 5", "estimated", 90 / 117,
            lambda ctx: ctx.analytics.motif_concentration(5), rel_tol=1e-12,
        ),
    ]


def _fig6() -> list[Expectation]:
    from repro.portfolio.reference import MOTIF_DOMAIN_MATRIX
    from repro.portfolio.taxonomy import Domain, Motif

    def cell(motif, domain):
        return lambda ctx: ctx.motif_matrix[motif][domain]

    return [
        _e(
            "fig6.matrix_exact",
            "the full 11x9 motif-by-domain count matrix reproduces exactly",
            "Fig. 6", "estimated", True,
            lambda ctx: all(
                ctx.motif_matrix[m][d] == MOTIF_DOMAIN_MATRIX[m][d]
                for m in MOTIF_DOMAIN_MATRIX for d in Domain
            ),
            cmp="true",
        ),
        _e(
            "fig6.engineering_submodel_peak",
            "Engineering x Submodel is the single most prominent cell",
            "Fig. 6 / Sec. III", "stated", True,
            lambda ctx: ctx.motif_matrix[Motif.SUBMODEL][Domain.ENGINEERING]
            == max(max(row.values()) for row in ctx.motif_matrix.values()),
            cmp="true",
        ),
        _e(
            "fig6.biology_no_submodel", "Biology uses no grid Submodels",
            "Fig. 6 / Sec. III", "stated", 0,
            cell(Motif.SUBMODEL, Domain.BIOLOGY), cmp="exact",
            units="project-years",
        ),
        _e(
            "fig6.cs_no_mathcs",
            "Computer Science has no math/cs-algorithm entries",
            "Fig. 6 / Sec. III", "stated", 0,
            cell(Motif.MATH_CS_ALGORITHM, Domain.COMPUTER_SCIENCE),
            cmp="exact", units="project-years",
        ),
        _e(
            "fig6.materials_md_peak", "Materials dominates the MD-potentials row",
            "Fig. 6 / Sec. III", "stated", True,
            lambda ctx: ctx.motif_matrix[Motif.MD_POTENTIAL][Domain.MATERIALS]
            == max(ctx.motif_matrix[Motif.MD_POTENTIAL].values()),
            cmp="true",
        ),
    ]


def _section4b() -> list[Expectation]:
    def flops(key):
        return lambda ctx: ctx.app_result(key)["measured_flops"]

    def eff(key):
        return lambda ctx: ctx.app_result(key)["measured_efficiency"]

    return [
        _e(
            "section4b.kurth.peak_flops",
            "Kurth climate segmentation: 1.13 EF peak at 4560 nodes",
            "Sec. IV-B.1", "stated", 1.13e18, flops("kurth"),
            rel_tol=0.03, units="FLOP/s",
        ),
        _e(
            "section4b.kurth.efficiency",
            "Kurth parallel efficiency 90.7%",
            "Sec. IV-B.1", "stated", 0.907, eff("kurth"), abs_tol=0.02,
        ),
        _e(
            "section4b.yang.peak_flops",
            "Yang PI-GAN: over 1.2 EF at 4584 nodes",
            "Sec. IV-B.2", "stated", 1.15e18, flops("yang"),
            cmp="gt", units="FLOP/s",
        ),
        _e(
            "section4b.yang.efficiency", "Yang efficiency 93%",
            "Sec. IV-B.2", "stated", 0.93, eff("yang"), abs_tol=0.02,
        ),
        _e(
            "section4b.laanait.peak_flops",
            "Laanait microscopy inversion: 2.15 EF peak at 4600 nodes",
            "Sec. IV-B.3", "stated", 2.15e18, flops("laanait"),
            rel_tol=0.03, units="FLOP/s",
        ),
        _e(
            "section4b.laanait.global_batch",
            "Laanait global batch size 27,600",
            "Sec. IV-B.3", "stated", 27600,
            lambda ctx: ctx.app_global_batch("laanait"), cmp="exact",
            units="samples",
        ),
        _e(
            "section4b.khan.efficiency",
            "Khan gravitational waves: 80% efficiency, 8 -> 1024 nodes",
            "Sec. IV-B.4", "stated", 0.80, eff("khan"), abs_tol=0.03,
        ),
        _e(
            "section4b.blanchard.peak_flops",
            "Blanchard SMILES-BERT: 603 PF peak at 4032 nodes",
            "Sec. IV-B.5", "stated", 603e15, flops("blanchard"),
            rel_tol=0.03, units="FLOP/s",
        ),
        _e(
            "section4b.blanchard.efficiency_with_io",
            "Blanchard scaling efficiency 68% including I/O",
            "Sec. IV-B.5", "stated", 0.68, eff("blanchard"), abs_tol=0.03,
        ),
        _e(
            "section4b.blanchard.efficiency_without_io",
            "Blanchard scaling efficiency 83.3% without I/O costs",
            "Sec. IV-B.5", "stated", 0.833,
            lambda ctx: ctx.blanchard_no_io["measured_efficiency"],
            abs_tol=0.03,
        ),
        _e(
            "section4b.blanchard.max_global_batch",
            "Blanchard global batch up to 5.8 million",
            "Sec. IV-B.5", "stated", 5.8e6,
            lambda ctx: ctx.app_global_batch("blanchard"),
            rel_tol=0.01, units="samples",
        ),
        _e(
            "section4b.khan_comm_dominated",
            "Khan is the only communication-dominated app of the five",
            "Sec. IV-B", "structural", True,
            lambda ctx: ctx.app_result("khan")["breakdown"].comm_fraction
            == max(
                ctx.app_result(k)["breakdown"].comm_fraction
                for k in ("kurth", "yang", "laanait", "khan", "blanchard")
            ),
            cmp="true",
        ),
        _e(
            "section4b.blanchard_io_penalised",
            "Blanchard (GPFS-fed) is the only I/O-penalised app",
            "Sec. IV-B / VI-B", "structural", True,
            lambda ctx: (
                ctx.app_result("blanchard")["breakdown"].io_fraction > 0.05
                and all(
                    ctx.app_result(k)["breakdown"].io_fraction < 0.01
                    for k in ("kurth", "yang", "laanait", "khan")
                )
            ),
            cmp="true",
        ),
    ]


def _section6b() -> list[Expectation]:
    return [
        _e(
            "section6b.read_requirement",
            "full-Summit ResNet-50 needs ~20 TB/s aggregate read",
            "Sec. VI-B", "stated", 20e12,
            lambda ctx: ctx.io_report["required"], rel_tol=0.02, units="B/s",
        ),
        _e(
            "section6b.gpfs_read_bandwidth", "GPFS read bandwidth is 2.5 TB/s",
            "Sec. VI-B", "stated", 2.5e12,
            lambda ctx: ctx.io_report["shared_fs"], rel_tol=1e-12, units="B/s",
        ),
        _e(
            "section6b.nvme_read_bandwidth",
            "node-local NVMe aggregates to over 27 TB/s",
            "Sec. VI-B", "stated", 27e12,
            lambda ctx: ctx.io_report["nvme"], cmp="gt", units="B/s",
        ),
        _e(
            "section6b.gpfs_feasible", "GPFS cannot feed full-Summit ResNet-50",
            "Sec. VI-B", "stated", False,
            lambda ctx: ctx.io_report["shared_fs_feasible"], cmp="exact",
        ),
        _e(
            "section6b.nvme_feasible", "NVMe can feed full-Summit ResNet-50",
            "Sec. VI-B", "stated", True,
            lambda ctx: ctx.io_report["nvme_feasible"], cmp="exact",
        ),
        _e(
            "section6b.resnet50_message",
            "ResNet-50 allreduce message is about 100 MB",
            "Sec. VI-B", "stated", 100e6,
            lambda ctx: ctx.gradient_bytes("resnet50"), rel_tol=0.05,
            units="bytes",
        ),
        _e(
            "section6b.bert_large_message",
            "BERT-large allreduce message is about 1.4 GB",
            "Sec. VI-B", "stated", 1.4e9,
            lambda ctx: ctx.gradient_bytes("bert_large"), rel_tol=0.05,
            units="bytes",
        ),
        _e(
            "section6b.resnet50_allreduce_time",
            "ResNet-50 allreduce takes roughly 8 ms",
            "Sec. VI-B", "stated", 8e-3,
            lambda ctx: ctx.allreduce_estimate("resnet50"), rel_tol=0.05,
            units="s",
        ),
        _e(
            "section6b.bert_large_allreduce_time",
            "BERT-large allreduce takes roughly 110 ms",
            "Sec. VI-B", "stated", 110e-3,
            lambda ctx: ctx.allreduce_estimate("bert_large"), rel_tol=0.05,
            units="s",
        ),
        _e(
            "section6b.resnet50_comm_hidden",
            "ResNet-50 comfortably hides its allreduce behind compute",
            "Sec. VI-B", "stated", 0.15,
            lambda ctx: ctx.comm_compute_ratio("resnet50", 128), cmp="lt",
        ),
        _e(
            "section6b.bert_large_comm_close",
            "BERT-large allreduce is 'close to' its per-batch compute",
            "Sec. VI-B", "stated", True,
            lambda ctx: 0.3 < ctx.comm_compute_ratio("bert_large", 32) < 1.0,
            cmp="true",
        ),
        _e(
            "section6b.beyond_bert_comm_bound",
            "models larger than BERT-large become communication-bound",
            "Sec. VI-B", "stated", 0.5,
            lambda ctx: ctx.beyond_bert_comm_fraction, cmp="gt",
        ),
        _e(
            "section6b.staging_exceeds_epoch_read",
            "NVMe staging 'costs adding up' dominates one epoch's reads",
            "Sec. VI-B", "stated", True,
            lambda ctx: ctx.staging_costs[0] > ctx.staging_costs[1],
            cmp="true",
        ),
        _e(
            "section6b.reshuffle_exceeds_epoch_read",
            "per-epoch global reshuffling is expensive vs the local read",
            "Sec. VI-B", "stated", True,
            lambda ctx: ctx.staging_costs[2] > ctx.staging_costs[1],
            cmp="true",
        ),
    ]


def _section5() -> list[Expectation]:
    return [
        _e(
            "section5.materials.tc_error",
            "surrogate MC locates the order-disorder transition within 5%",
            "Sec. V-A", "structural", 0.05,
            lambda ctx: ctx.materials.tc_relative_error, cmp="lt",
        ),
        _e(
            "section5.materials.expensive_calls",
            "first-principles oracle called only for the training set",
            "Sec. V-A", "structural", 32,
            lambda ctx: ctx.materials.expensive_calls, cmp="exact",
            units="calls",
        ),
        _e(
            "section5.materials.call_reduction",
            "surrogate displaces >10x the expensive evaluations",
            "Sec. V-A", "structural", 10,
            lambda ctx: ctx.materials.call_reduction, cmp="gt", units="x",
        ),
        _e(
            "section5.materials.bic_selects_nn",
            "BIC model selection finds exactly the nearest-neighbour term",
            "Sec. V-A", "structural", True,
            lambda ctx: ctx.materials.ce_terms == (1,), cmp="true",
        ),
        _e(
            "section5.biology.event_detected",
            "the rare mesoscale event is detected as a latent outlier",
            "Sec. V-B", "structural", True,
            lambda ctx: ctx.biology.event_detected, cmp="true",
        ),
        _e(
            "section5.biology.outlier_ratio",
            "event outlier score stands >3x above the baseline",
            "Sec. V-B", "structural", 3.0,
            lambda ctx: ctx.biology.event_score_ratio, cmp="gt", units="x",
        ),
        _e(
            "section5.biology.refinements",
            "exactly one atomistic refinement is triggered",
            "Sec. V-B", "structural", 1,
            lambda ctx: ctx.biology.refinements_triggered, cmp="exact",
        ),
        _e(
            "section5.biology.campaign_beats_serial",
            "cross-facility orchestration beats serial execution",
            "Sec. V-B", "structural", True,
            lambda ctx: ctx.biology_campaign[0] < ctx.biology_campaign[1],
            cmp="true",
        ),
        _e(
            "section5.drug.loop_beats_docking",
            "the surrogate loop enriches binders at least as well as docking",
            "Sec. V-C", "structural", True,
            lambda ctx: ctx.drug.enrichment >= ctx.drug.enrichment_docking,
            cmp="true",
        ),
        _e(
            "section5.drug.loop_beats_random",
            "the surrogate loop beats random selection at equal MD budget",
            "Sec. V-C", "structural", True,
            lambda ctx: ctx.drug.enrichment > ctx.drug.enrichment_random,
            cmp="true",
        ),
    ]


def build_registry() -> tuple[Expectation, ...]:
    """The full expectation registry, in paper order. Keys are unique."""
    entries = (
        *_table1(), *_table2(), *_table3(),
        *_fig1(), *_fig2(), *_fig3(), *_fig4(), *_fig5(), *_fig6(),
        *_section4b(), *_section5(), *_section6b(),
    )
    seen: set[str] = set()
    for e in entries:
        if e.key in seen:
            raise ConfigurationError(f"duplicate registry key {e.key!r}")
        seen.add(e.key)
    return entries


def expectation_sections() -> tuple[str, ...]:
    """Registry sections in paper order, without duplicates."""
    out: dict[str, None] = {}
    for e in build_registry():
        out.setdefault(e.section, None)
    return tuple(out)


def get_expectation(key: str) -> Expectation:
    """Look one expectation up by key; raises on unknown keys."""
    for e in build_registry():
        if e.key == key:
            return e
    raise ConfigurationError(f"no expectation registered under {key!r}")


# ---------------------------------------------------------------------------
# Benchmark-record bindings: BENCH_<name>.json scalar -> registry key.
# ---------------------------------------------------------------------------

#: Which benchmark-record scalars map onto which registry entries. Used by
#: ``benchmarks/_record.py`` to stamp a conformance verdict into every
#: record whose numbers correspond to a paper claim.
BENCH_BINDINGS: dict[str, dict[str, str]] = {
    "scaling_kurth": {
        "peak_flops": "section4b.kurth.peak_flops",
        "efficiency": "section4b.kurth.efficiency",
    },
    "scaling_yang": {
        "peak_flops": "section4b.yang.peak_flops",
        "efficiency": "section4b.yang.efficiency",
    },
    "scaling_laanait": {
        "peak_flops": "section4b.laanait.peak_flops",
        "global_batch": "section4b.laanait.global_batch",
    },
    "scaling_khan": {
        "efficiency": "section4b.khan.efficiency",
    },
    "scaling_blanchard": {
        "peak_flops": "section4b.blanchard.peak_flops",
        "efficiency_with_io": "section4b.blanchard.efficiency_with_io",
        "efficiency_without_io": "section4b.blanchard.efficiency_without_io",
        "max_global_batch": "section4b.blanchard.max_global_batch",
    },
    "section6b_read_requirement": {
        "required_bandwidth": "section6b.read_requirement",
        "shared_fs_bandwidth": "section6b.gpfs_read_bandwidth",
        "nvme_bandwidth": "section6b.nvme_read_bandwidth",
        "shared_fs_feasible": "section6b.gpfs_feasible",
        "nvme_feasible": "section6b.nvme_feasible",
    },
    "section6b_allreduce": {
        "resnet50_seconds": "section6b.resnet50_allreduce_time",
        "bert_large_seconds": "section6b.bert_large_allreduce_time",
    },
}


def verdicts_for(name: str, scalars: dict[str, Any]) -> dict | None:
    """Registry verdicts for one benchmark record, or None if unmapped.

    For every scalar of benchmark ``name`` bound to a registry key, returns
    ``{scalar: {expectation, paper, expected, cmp, rel_error, passed}}`` —
    the machine-readable pass/fail that rides inside ``BENCH_<name>.json``.
    """
    bindings = BENCH_BINDINGS.get(name)
    if not bindings:
        return None
    out: dict[str, dict] = {}
    for scalar_key, registry_key in bindings.items():
        if scalar_key not in scalars:
            continue
        result = get_expectation(registry_key).compare(scalars[scalar_key])
        out[scalar_key] = {
            "expectation": registry_key,
            "paper": result.paper,
            "expected": result.expected,
            "cmp": result.cmp,
            "rel_error": result.rel_error,
            "passed": result.passed,
        }
    return out or None
