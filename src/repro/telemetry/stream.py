"""Out-of-core telemetry: size-bounded JSONL shards + incremental rollup.

ROADMAP item 3's enabling layer: a merged trace for a million-job replay
cannot live in memory, so a :class:`~repro.telemetry.context.Telemetry`
handle constructed with a :class:`ShardedJsonlSink` spills every *closed*
record (spans on ``end``, instants and counter samples at record time,
the metrics registry at ``close``) to crash-safe JSONL shard files, one
wire format shared with ``to_jsonl`` and the service's pubsub frames.

Two consumers read the shards back:

- :func:`load_shards` — the deterministic stitcher: materializes a full
  :class:`Telemetry` handle whose Chrome-trace / JSONL / summary exports
  are **byte-identical** to what the in-memory run would have produced, at
  any shard size (gated by ``audit_streaming_identity`` in
  :mod:`repro.verify`). Spans spill in *end* order; re-sorting by span id
  restores begin order, which is all the exporters key on.
- :class:`ShardAggregator` — bounded-memory incremental aggregation:
  span-duration stats per category, float-exact utilization
  step-integrals (:class:`~repro.telemetry.timeline.UtilizationAccumulator`),
  and the :class:`~repro.telemetry.metrics.MetricsRegistry` rollup, without
  ever materializing the records. Shard files aggregate independently, so
  ``consume_directory(..., n_jobs=N)`` reuses the
  :class:`~repro.exec.parallel.ParallelMap` fabric and merges the partial
  aggregates in shard order.

>>> import tempfile
>>> from repro.telemetry import Telemetry
>>> d = tempfile.mkdtemp()
>>> tel = Telemetry(sink=ShardedJsonlSink(d, shard_max_bytes=1))
>>> with tel.span("step", "bench"):
...     tel.metrics.counter("steps").inc()
>>> tel.close()
>>> [r["type"] for r in iter_shard_records(d)]
['span', 'counter']
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.telemetry.context import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import CounterSample, InstantEvent, Span
from repro.telemetry.timeline import UtilizationAccumulator

__all__ = [
    "DEFAULT_SHARD_MAX_BYTES",
    "ShardAggregator",
    "ShardedJsonlSink",
    "SpanSink",
    "iter_shard_records",
    "load_shards",
    "shard_paths",
]

SHARD_PREFIX = "telemetry-"
SHARD_SUFFIX = ".jsonl"
#: Default shard rotation threshold — small enough to bound memory, large
#: enough that a scenario trace stays a handful of files.
DEFAULT_SHARD_MAX_BYTES = 4 * 1024 * 1024

#: Record types carrying a spilled metrics-registry instrument.
_METRIC_TYPES = ("counter", "gauge", "histogram")


@runtime_checkable
class SpanSink(Protocol):
    """Where a :class:`Telemetry` handle sends closed records.

    ``emit_*`` receive records exactly once, in close/record order;
    ``flush`` makes buffered records durable at a quiescent point; ``close``
    receives the final metrics registry and seals the sink. Taps registered
    via ``Telemetry.add_tap`` satisfy the ``emit_*`` subset.
    """

    def emit_span(self, span: Span) -> None: ...

    def emit_instant(self, event: InstantEvent) -> None: ...

    def emit_sample(self, sample: CounterSample) -> None: ...

    def flush(self) -> None: ...

    def close(self, metrics: MetricsRegistry | None = None) -> None: ...


def shard_paths(directory: str | Path) -> list[Path]:
    """Telemetry shards under ``directory``, in spill order."""
    directory = Path(directory)
    if not directory.exists():
        return []
    return sorted(
        p for p in directory.iterdir()
        if p.name.startswith(SHARD_PREFIX) and p.name.endswith(SHARD_SUFFIX)
    )


class ShardedJsonlSink:
    """Spill closed telemetry records to size-bounded JSONL shard files.

    Records buffer in encoded form and rotate into
    ``<dir>/telemetry-00000001.jsonl``, ``telemetry-00000002.jsonl``, ...
    once the buffer reaches ``shard_max_bytes``. Every shard is written
    through :func:`repro.atomicio.atomic_write_bytes`, so readers only ever
    see complete shards — a crash loses at most the unflushed buffer,
    never tears a file. Peak memory is O(shard_max_bytes), independent of
    trace length.
    """

    def __init__(
        self,
        directory: str | Path,
        shard_max_bytes: int = DEFAULT_SHARD_MAX_BYTES,
        fsync: bool = False,
    ):
        if shard_max_bytes < 1:
            raise ConfigurationError("shard_max_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if shard_paths(self.directory):
            raise ConfigurationError(
                f"{self.directory} already holds telemetry shards; "
                "spill each run to a fresh directory"
            )
        self.shard_max_bytes = shard_max_bytes
        self.fsync = fsync
        self.n_spans = 0
        self.n_instants = 0
        self.n_samples = 0
        self.n_shards = 0
        self._buffer: list[bytes] = []
        self._buffer_bytes = 0
        self._closed = False

    # -- the sink surface ----------------------------------------------------------

    def emit_span(self, span: Span) -> None:
        from repro.telemetry.export import span_record

        self.n_spans += 1
        self._emit(span_record(span))

    def emit_instant(self, event: InstantEvent) -> None:
        from repro.telemetry.export import instant_record

        self.n_instants += 1
        self._emit(instant_record(event))

    def emit_sample(self, sample: CounterSample) -> None:
        from repro.telemetry.export import sample_record

        self.n_samples += 1
        self._emit(sample_record(sample))

    def flush(self) -> None:
        """Rotate the partial buffer out as a shard (durability point)."""
        if self._buffer:
            self._write_shard()

    def close(self, metrics: MetricsRegistry | None = None) -> None:
        """Spill the metrics registry last, flush, and seal (idempotent)."""
        if self._closed:
            return
        from repro.telemetry.export import metric_records

        if metrics is not None:
            for record in metric_records(metrics):
                self._emit(record)
        self.flush()
        self._closed = True

    # -- internals -----------------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        if self._closed:
            raise ConfigurationError(
                "telemetry sink is closed; no further records accepted"
            )
        from repro.telemetry.export import encode_record

        line = encode_record(record).encode("utf-8") + b"\n"
        self._buffer.append(line)
        self._buffer_bytes += len(line)
        if self._buffer_bytes >= self.shard_max_bytes:
            self._write_shard()

    def _write_shard(self) -> None:
        from repro.atomicio import atomic_write_bytes

        self.n_shards += 1
        path = self.directory / (
            f"{SHARD_PREFIX}{self.n_shards:08d}{SHARD_SUFFIX}"
        )
        atomic_write_bytes(path, b"".join(self._buffer), fsync=self.fsync)
        self._buffer = []
        self._buffer_bytes = 0


def iter_shard_records(directory: str | Path) -> Iterator[dict[str, Any]]:
    """Stream every record from a shard directory, in spill order."""
    paths = shard_paths(directory)
    if not paths:
        raise ConfigurationError(
            f"no telemetry shards under {Path(directory)}"
        )
    for path in paths:
        yield from _iter_shard_file(path)


def _iter_shard_file(path: Path) -> Iterator[dict[str, Any]]:
    with open(path, "rb") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict) or "type" not in record:
                    raise ValueError
            except (ValueError, UnicodeDecodeError):
                raise ConfigurationError(
                    f"damaged telemetry record at {path.name}:{lineno}"
                ) from None
            yield record


def _restore_metric(metrics: MetricsRegistry, record: dict[str, Any]) -> None:
    kind = record["type"]
    name = record["name"]
    if kind == "counter":
        metrics.counter(name).inc(record["value"])
    elif kind == "gauge":
        metrics.gauge(name).set(record["value"])
    else:
        hist = metrics.histogram(name, tuple(record["edges"]))
        hist.counts = [int(c) for c in record["counts"]]
        hist.n = int(record["count"])
        hist.total = record["sum"]
        hist.min_value = record["min"]
        hist.max_value = record["max"]


def load_shards(directory: str | Path) -> Telemetry:
    """Stitch a shard directory back into a materialized handle.

    Deterministic: spans re-sort by span id (begin order — ids are issued
    sequentially at ``begin``), instants and samples keep spill order
    (their record order), metrics restore from the registry records. The
    result's ``chrome_trace_json`` / ``to_jsonl`` / ``summary`` exports are
    byte-identical to the in-memory run's at any shard size.
    """
    telemetry = Telemetry()
    spans: list[Span] = []
    for record in iter_shard_records(directory):
        kind = record["type"]
        if kind == "span":
            spans.append(Span(
                span_id=record["id"], name=record["name"],
                category=record["cat"], start=record["start"],
                facility=record["facility"], track=record["track"],
                parent_id=record["parent"], end=record["end"],
                attrs=dict(record["attrs"]),
            ))
        elif kind == "instant":
            telemetry.instants.append(InstantEvent(
                time=record["time"], name=record["name"],
                category=record["cat"], facility=record["facility"],
                track=record["track"], attrs=dict(record["attrs"]),
            ))
        elif kind == "sample":
            telemetry.samples.append(CounterSample(
                time=record["time"], resource=record["resource"],
                value=record["value"], capacity=record["capacity"],
                facility=record["facility"],
            ))
        elif kind in _METRIC_TYPES:
            _restore_metric(telemetry.metrics, record)
        else:
            raise ConfigurationError(
                f"unknown telemetry record type {kind!r} in shards"
            )
    spans.sort(key=lambda s: s.span_id)
    telemetry.spans = spans
    telemetry._next_id = (spans[-1].span_id + 1) if spans else 1
    return telemetry


# -- incremental aggregation ------------------------------------------------------


@dataclass
class CategoryStats:
    """Streaming duration stats for one span category."""

    n: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def add(self, duration: float) -> None:
        self.n += 1
        self.total += duration
        if self.min is None or duration < self.min:
            self.min = duration
        if self.max is None or duration > self.max:
            self.max = duration

    def merge(self, other: "CategoryStats") -> None:
        self.n += other.n
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


@dataclass
class ShardAggregator:
    """Bounded-memory rollup of a shard stream (never materializes it).

    Holds per-category span stats, per-resource
    :class:`UtilizationAccumulator` step-integrals, span-tree shape
    counters (roots, max depth proxy via parent links seen), instant
    counts, and the merged :class:`MetricsRegistry` — O(categories +
    resources + instruments) memory regardless of record count.
    """

    n_records: int = 0
    n_spans: int = 0
    n_instants: int = 0
    n_samples: int = 0
    n_root_spans: int = 0
    max_span_id: int = 0
    last_time: float = 0.0
    by_category: dict[str, CategoryStats] = field(default_factory=dict)
    utilization: dict[str, UtilizationAccumulator] = field(
        default_factory=dict
    )
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def consume(self, record: dict[str, Any]) -> None:
        """Fold one wire-format record into the rollup."""
        self.n_records += 1
        kind = record["type"]
        if kind == "span":
            self.n_spans += 1
            if record["parent"] is None:
                self.n_root_spans += 1
            if record["id"] > self.max_span_id:
                self.max_span_id = record["id"]
            if record["end"] > self.last_time:
                self.last_time = record["end"]
            self.by_category.setdefault(
                record["cat"], CategoryStats()
            ).add(record["end"] - record["start"])
        elif kind == "instant":
            self.n_instants += 1
            if record["time"] > self.last_time:
                self.last_time = record["time"]
        elif kind == "sample":
            self.n_samples += 1
            resource = record["resource"]
            acc = self.utilization.get(resource)
            if acc is None:
                acc = self.utilization[resource] = UtilizationAccumulator(
                    resource
                )
            acc.add(record["time"], record["value"], record["capacity"])
            if record["time"] > self.last_time:
                self.last_time = record["time"]
        elif kind in _METRIC_TYPES:
            _restore_metric(self.metrics, record)
        else:
            raise ConfigurationError(
                f"unknown telemetry record type {kind!r}"
            )

    def consume_shard(self, path: str | Path) -> None:
        for record in _iter_shard_file(Path(path)):
            self.consume(record)

    def consume_directory(
        self, directory: str | Path, n_jobs: int = 1
    ) -> "ShardAggregator":
        """Aggregate every shard under ``directory``; returns ``self``.

        ``n_jobs`` fans shard files out over the exec fabric's
        :class:`~repro.exec.parallel.ParallelMap`: each worker aggregates
        whole shards and the partial rollups merge back in shard order.
        The serial path uses the *same* per-shard-then-merge bracketing, so
        the result is bit-identical at every worker count (utilization
        integrals cross shard boundaries via one bridge term each; see
        :meth:`UtilizationAccumulator.merge`). Feed :meth:`consume` from
        :func:`iter_shard_records` instead when the record-order float sum
        must match the materialized timelines exactly.
        """
        paths = shard_paths(directory)
        if not paths:
            raise ConfigurationError(
                f"no telemetry shards under {Path(directory)}"
            )
        from repro.exec.parallel import ParallelMap

        partials = ParallelMap(n_jobs).map(
            _aggregate_one_shard, [str(p) for p in paths]
        )
        for partial in partials:
            self.merge(partial)
        return self

    def merge(self, other: "ShardAggregator") -> None:
        """Fold a later shard's rollup into this one (shard order)."""
        self.n_records += other.n_records
        self.n_spans += other.n_spans
        self.n_instants += other.n_instants
        self.n_samples += other.n_samples
        self.n_root_spans += other.n_root_spans
        self.max_span_id = max(self.max_span_id, other.max_span_id)
        self.last_time = max(self.last_time, other.last_time)
        for cat, stats in other.by_category.items():
            self.by_category.setdefault(cat, CategoryStats()).merge(stats)
        for resource, acc in other.utilization.items():
            mine = self.utilization.get(resource)
            if mine is None:
                self.utilization[resource] = acc
            else:
                mine.merge(acc)
        self.metrics.merge(other.metrics)

    # -- views ---------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        return {
            "n_records": self.n_records,
            "n_spans": self.n_spans,
            "n_instants": self.n_instants,
            "n_samples": self.n_samples,
            "n_root_spans": self.n_root_spans,
            "max_span_id": self.max_span_id,
            "last_time": self.last_time,
            "categories": {
                cat: {
                    "n": s.n, "total": s.total, "mean": s.mean,
                    "min": s.min, "max": s.max,
                }
                for cat, s in sorted(self.by_category.items())
            },
            "utilization": {
                resource: {
                    "busy": acc.busy_time(),
                    "utilization": acc.utilization(),
                    "peak": acc.peak(),
                    "capacity": acc.capacity(),
                    "n_samples": acc.n_samples,
                }
                for resource, acc in self.utilization.items()
            },
            "metrics": self.metrics.as_dict(),
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"shard rollup: {self.n_spans} spans "
            f"({self.n_root_spans} roots), {self.n_instants} instants, "
            f"{self.n_samples} samples",
        ]
        for cat in sorted(self.by_category):
            stats = self.by_category[cat]
            lines.append(
                f"  {cat:<18} n={stats.n:<6} total={stats.total:.6g} s  "
                f"mean={stats.mean:.6g} s"
            )
        for resource, acc in self.utilization.items():
            lines.append(
                f"  {resource:<18} busy={acc.busy_time():.6g} node-s  "
                f"util={acc.utilization():.1%}  "
                f"peak={acc.peak():g}/{acc.capacity():g}"
            )
        return lines


def _aggregate_one_shard(path: str) -> ShardAggregator:
    aggregator = ShardAggregator()
    aggregator.consume_shard(path)
    return aggregator
