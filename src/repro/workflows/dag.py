"""Task graphs executed on the discrete-event engine.

Plays the role Balsam and RAPTOR play in the paper's workflows: declare
tasks with durations, node requirements, facility placement and
dependencies; execute them with correct resource contention; read off the
makespan, per-facility utilisation and the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Resource
from repro.sim.trace import Trace
from repro.workflows.facility import Facility


@dataclass(frozen=True)
class Task:
    """One workflow task.

    ``duration`` is reference-machine seconds (rescaled by the facility's
    speed); ``nodes`` are acquired from the facility for the task's span.
    """

    name: str
    duration: float
    facility: str
    nodes: int = 1
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"{self.name}: negative duration")
        if self.nodes < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")


@dataclass
class WorkflowRun:
    """Results of executing a task graph."""

    makespan: float
    start_times: dict[str, float]
    end_times: dict[str, float]
    trace: Trace = field(default_factory=Trace)

    def critical_path(self, graph: "TaskGraph") -> list[str]:
        """Chain of tasks ending at the latest finisher, following the
        dependency (or resource-wait) chain backwards greedily."""
        if not self.end_times:
            return []
        path = [max(self.end_times, key=self.end_times.get)]
        while True:
            task = graph.tasks[path[-1]]
            if not task.deps:
                break
            # predecessor that finished last gates this task
            gate = max(task.deps, key=lambda d: self.end_times[d])
            path.append(gate)
        return list(reversed(path))

    def facility_busy_node_seconds(self, graph: "TaskGraph") -> dict[str, float]:
        """Node-seconds consumed per facility."""
        out: dict[str, float] = {}
        for name, task in graph.tasks.items():
            span = self.end_times[name] - self.start_times[name]
            out[task.facility] = out.get(task.facility, 0.0) + span * task.nodes
        return out


class TaskGraph:
    """A DAG of :class:`Task` objects with validation and execution."""

    def __init__(self, facilities: dict[str, Facility]):
        if not facilities:
            raise ConfigurationError("need at least one facility")
        self.facilities = facilities
        self.tasks: dict[str, Task] = {}

    def add(self, task: Task) -> None:
        if task.name in self.tasks:
            raise ConfigurationError(f"duplicate task {task.name!r}")
        if task.facility not in self.facilities:
            raise ConfigurationError(
                f"{task.name}: unknown facility {task.facility!r}"
            )
        facility = self.facilities[task.facility]
        if task.nodes > facility.nodes:
            raise ConfigurationError(
                f"{task.name}: needs {task.nodes} nodes, {facility.name} has "
                f"{facility.nodes}"
            )
        for dep in task.deps:
            if dep not in self.tasks:
                raise ConfigurationError(
                    f"{task.name}: dependency {dep!r} not yet added "
                    "(add tasks in topological order)"
                )
        self.tasks[task.name] = task

    def add_task(
        self,
        name: str,
        duration: float,
        facility: str,
        nodes: int = 1,
        deps: tuple[str, ...] | list[str] = (),
    ) -> Task:
        """Convenience builder."""
        task = Task(
            name=name, duration=duration, facility=facility,
            nodes=nodes, deps=tuple(deps),
        )
        self.add(task)
        return task

    def execute(self) -> WorkflowRun:
        """Run the DAG with resource contention; returns timing results."""
        if not self.tasks:
            raise ConfigurationError("empty task graph")
        engine = Engine()
        pools = {
            key: Resource(engine, fac.nodes, name=fac.name)
            for key, fac in self.facilities.items()
        }
        run = WorkflowRun(makespan=0.0, start_times={}, end_times={})
        procs: dict[str, object] = {}

        def task_proc(task: Task):
            for dep in task.deps:
                yield procs[dep]
            yield pools[task.facility].acquire(task.nodes)
            run.start_times[task.name] = engine.now
            run.trace.record(engine.now, "start", task.name, task.nodes)
            duration = self.facilities[task.facility].duration(task.duration)
            yield Timeout(duration)
            pools[task.facility].release(task.nodes)
            run.end_times[task.name] = engine.now
            run.trace.record(engine.now, "end", task.name, duration)

        for name, task in self.tasks.items():
            procs[name] = engine.spawn(task_proc(task), name=name)
        engine.run()

        if len(run.end_times) != len(self.tasks):
            missing = set(self.tasks) - set(run.end_times)
            raise SimulationError(f"tasks never completed: {sorted(missing)}")
        run.makespan = max(run.end_times.values())
        return run

    def serial_time(self) -> float:
        """Sum of all task durations on their placed facilities — the
        no-concurrency baseline a coordinated workflow is compared against."""
        return sum(
            self.facilities[t.facility].duration(t.duration)
            for t in self.tasks.values()
        )
