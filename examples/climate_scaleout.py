#!/usr/bin/env python
"""Climate-analytics scale-out (Kurth et al., Section IV-B.1) end to end.

Reproduces the shape of the first exascale deep-learning result: weak
scaling of a DeepLabv3+-style segmentation network to 4 560 Summit nodes,
with the step-time decomposition showing *why* it scales — fp16 gradients,
NVLink-then-InfiniBand hierarchical allreduce hidden under the backward
pass, and the node-local NVMe input pipeline. Also runs the counterfactuals
the paper's design implies: what GPFS staging or unoverlapped communication
would have cost.

Run:  python examples/climate_scaleout.py
"""

from repro import units
from repro.apps.extreme_scale import get_app
from repro.training import DataSource, ScalingStudy
from repro.training.scaling import ScalingStudy as Study


def main() -> None:
    app = get_app("kurth")
    print("Application:", app.citation)
    print()

    base = app.job(1)
    study = ScalingStudy(base)
    points = study.weak_scaling([1, 16, 64, 256, 1024, 4560])
    print(Study.table(points, "DeepLabv3+ climate segmentation, weak scaling"))
    print()

    peak = app.job(app.peak_nodes)
    b = peak.breakdown()
    print(f"At {app.peak_nodes} nodes:")
    print(f"  sustained          {units.format_flops(peak.sustained_flops())}")
    print(f"  step time          {units.format_time(b.total)}")
    print(f"  compute            {units.format_time(b.compute)}")
    print(f"  straggler penalty  {units.format_time(b.straggler)}")
    print(f"  allreduce (total)  {units.format_time(b.comm)}  "
          f"(exposed {units.format_time(b.comm_exposed)})")
    print(f"  input pipeline     {units.format_time(b.io)}  "
          f"(exposed {units.format_time(b.io_exposed)})")
    print(f"  reported: 1.13 EF peak, 90.7 % parallel efficiency")
    print()

    # -- counterfactual: shared-filesystem input pipeline --------------------------
    gpfs_job = peak.with_data_source(DataSource.SHARED_FS)
    gb = gpfs_job.breakdown()
    slowdown = gb.total / b.total
    print(
        f"Counterfactual — read inputs from GPFS instead of NVMe: "
        f"step {units.format_time(gb.total)} ({slowdown:.1f}x slower; "
        f"exposed I/O {units.format_time(gb.io_exposed)})"
    )

    # -- counterfactual: no communication/computation overlap ------------------------
    from dataclasses import replace

    no_overlap = peak.with_plan(replace(peak.plan, overlap_fraction=0.0))
    nb = no_overlap.breakdown()
    print(
        f"Counterfactual — no comm/compute overlap: step "
        f"{units.format_time(nb.total)} "
        f"({nb.total / b.total:.2f}x; exposed comm {units.format_time(nb.comm_exposed)})"
    )


if __name__ == "__main__":
    main()
