"""Node-local NVMe burst-buffer model and data-staging cost.

Section VI-B: node-local NVMe delivers >27 TB/s aggregate read across Summit
(6 GB/s x 4 608 nodes = 27.6 TB/s), comfortably above the ~20 TB/s needed for
ideal full-system ResNet-50 scaling — but the data "is not persistent between
jobs", so every job pays a staging cost from the shared filesystem, and
per-epoch global shuffling is expensive once the dataset is partitioned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CapacityError, ConfigurationError
from repro.storage.dataset import Dataset, ShardingPlan
from repro.storage.filesystem import SharedFileSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class BurstBuffer:
    """One node's NVMe volume."""

    capacity_bytes: float
    read_bandwidth: float
    write_bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("NVMe capacity must be positive")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigurationError("NVMe bandwidths must be positive")

    def aggregate_read_bandwidth(self, n_nodes: int) -> float:
        """Fleet-wide read bytes/s: node-local volumes scale linearly."""
        if n_nodes < 1:
            raise ConfigurationError("need at least one node")
        return self.read_bandwidth * n_nodes

    def read_time(self, size_bytes: float) -> float:
        if size_bytes < 0:
            raise ConfigurationError("negative read size")
        return size_bytes / self.read_bandwidth


@dataclass(frozen=True)
class StagingPlan:
    """Cost model for staging a sharded dataset from the shared FS to NVMe.

    Staging is limited by the slower of (a) the shared filesystem's aggregate
    read bandwidth divided among nodes and (b) each node's NVMe write rate.
    With replication ``r`` the fabric must deliver ``r`` copies of the
    dataset in total.
    """

    plan: ShardingPlan
    shared_fs: SharedFileSystem
    nvme: BurstBuffer

    def __post_init__(self) -> None:
        if self.plan.nvme_bytes_per_node > self.nvme.capacity_bytes:
            raise CapacityError(
                "sharding plan was built against a larger NVMe volume than "
                "this burst buffer provides"
            )

    def staging_time(self) -> float:
        """Seconds to stage the full (replicated) dataset onto all nodes."""
        self.plan.require_fits()
        per_node = self.plan.bytes_per_node
        fs_rate = self.shared_fs.read_bandwidth(self.plan.n_nodes)
        node_rate = min(fs_rate, self.nvme.write_bandwidth)
        return per_node / node_rate

    def epoch_read_time(self, random_access: bool = True) -> float:
        """Seconds for each node to read its shard once per epoch.

        NVMe random reads are close to streaming rate, so no derate is
        applied; the flag is kept for symmetry with the shared filesystem.
        """
        del random_access
        return self.nvme.read_time(self.plan.bytes_per_node)

    def reshuffle_time(self, fraction: float = 1.0) -> float:
        """Seconds to globally re-shuffle ``fraction`` of the data between
        epochs by re-staging it through the shared filesystem.

        This is the cost the paper calls "expensive if per-epoch data
        shuffling is enforced".
        """
        if not 0 <= fraction <= 1:
            raise ConfigurationError("fraction must be in [0, 1]")
        if fraction == 0:
            return 0.0
        moved = self.plan.dataset.total_bytes * self.plan.replication * fraction
        # Round trip: write back to the shared FS then read the permutation.
        write_rate = self.shared_fs.aggregate_write_bandwidth
        read_rate = self.shared_fs.aggregate_read_bandwidth
        return moved / write_rate + moved / read_rate


@dataclass(frozen=True)
class CachingLayer:
    """An NVMe-backed transparent cache over the shared filesystem — the
    "highly desirable" design of Section VI-B. First epoch reads at shared-FS
    speed while warming the cache; later epochs read at NVMe speed, with no
    explicit staging step and no loss of persistence semantics."""

    shared_fs: SharedFileSystem
    nvme: BurstBuffer

    def epoch_read_time(self, dataset: Dataset, n_nodes: int, epoch: int) -> float:
        """Per-node read time for the given (0-based) epoch."""
        if epoch < 0:
            raise ConfigurationError("epoch must be >= 0")
        per_node = dataset.total_bytes / n_nodes
        if epoch == 0:
            fs_rate = self.shared_fs.read_bandwidth(n_nodes, random_access=True)
            rate = min(fs_rate, self.nvme.write_bandwidth)
        else:
            rate = self.nvme.read_bandwidth
        return per_node / rate


def burst_buffer(
    machine: "MachineSpec | str | None" = None,
) -> BurstBuffer | None:
    """The per-node NVMe of ``machine`` (default Summit), or ``None`` for
    machines without a node-local burst buffer."""
    from repro.machine.spec import resolve_machine

    return resolve_machine(machine).nvme


# ``SUMMIT_NVME`` — 1.6 TB, ~6 GB/s read / ~2.1 GB/s write per node — resolves
# lazily (PEP 562) from the machine registry, which imports this module for
# the BurstBuffer class.


def __getattr__(name: str) -> BurstBuffer:
    if name == "SUMMIT_NVME":
        from repro.machine.spec import SUMMIT

        return SUMMIT.nvme
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | {"SUMMIT_NVME"})
