#!/usr/bin/env python
"""Quickstart: the three headline analyses of the paper in ~40 lines.

1. Summit's machine model and the Section VI-B communication estimates.
2. The Section VI-B I/O feasibility analysis (GPFS vs node-local NVMe).
3. A full-system weak-scaling study for a climate-segmentation model.

Run:  python examples/quickstart.py
"""

from repro import units
from repro.core import ScalingStudyRunner, SummitSimulator
from repro.training import ParallelismPlan


def main() -> None:
    sim = SummitSimulator()

    print("=" * 72)
    print("Machine:", sim.system.describe())
    print()

    # -- Section VI-B: allreduce cost estimates -------------------------------
    print("Gradient allreduce on Summit (paper's bandwidth-only estimate):")
    for key in ("resnet50", "bert_large"):
        t = sim.allreduce_estimate(key)
        t_full = sim.allreduce_detailed(key, n_nodes=4096)
        print(
            f"  {key:<12} estimate {units.format_time(t):>10}   "
            f"full ring model at 4096 nodes {units.format_time(t_full):>10}"
        )
    print()

    # -- Section VI-B: the I/O wall ---------------------------------------------
    print("Input-pipeline feasibility for full-Summit data-parallel training:")
    print(" ", sim.io_report("resnet50")["summary"])
    print()

    # -- Section IV-B style scaling study ------------------------------------------
    runner = ScalingStudyRunner(
        "deeplabv3plus",
        ParallelismPlan(local_batch=2, overlap_fraction=0.9, compute_jitter_cv=0.042),
    )
    print(runner.table([1, 16, 128, 1024, 4560]))


if __name__ == "__main__":
    main()
