"""Empirical-vs-analytical validation of the Young/Daly checkpoint model.

``CheckpointPlan.overhead_fraction`` is a first-order closed form; nothing
in the seed codebase ever checked it against an actual failure process.
:func:`validate_young_daly` runs the event-driven checkpoint-restart
simulation at the plan's parameters and reports how far the measured
overhead lands from the analytical prediction — the acceptance gate is
agreement within 20 % in the regime where the model's assumptions hold
(``write_time << interval << system MTBF``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.checkpoint import CheckpointPlan

from repro.resilience.restart import RestartStats, simulate_checkpoint_restart

#: Default useful-work length, in units of the job's system MTBF. Long
#: enough that the run accumulates O(100) failures and the stochastic
#: rework term converges to its expectation.
DEFAULT_WORK_MTBF_MULTIPLE = 150.0


@dataclass(frozen=True)
class ValidationResult:
    """One empirical-vs-analytical comparison point."""

    analytical_overhead: float
    empirical_overhead: float
    tolerance: float
    interval: float
    write_time: float
    system_mtbf: float
    stats: RestartStats

    @property
    def relative_error(self) -> float:
        if self.analytical_overhead == 0:
            return 0.0 if self.empirical_overhead == 0 else float("inf")
        return (
            abs(self.empirical_overhead - self.analytical_overhead)
            / self.analytical_overhead
        )

    @property
    def within_tolerance(self) -> bool:
        return self.relative_error <= self.tolerance

    def summary(self) -> str:
        verdict = "OK" if self.within_tolerance else "MISMATCH"
        return (
            f"analytical {self.analytical_overhead:.2%} vs empirical "
            f"{self.empirical_overhead:.2%} "
            f"(rel. err {self.relative_error:.1%}, tol {self.tolerance:.0%}) "
            f"[{verdict}]"
        )


def empirical_overhead(
    plan: CheckpointPlan,
    write_time: float,
    interval: float | None = None,
    seed: int = 0,
    work_seconds: float | None = None,
) -> RestartStats:
    """Measure the checkpoint+rework overhead by event-driven simulation."""
    tau = interval if interval is not None else plan.optimal_interval(write_time)
    if work_seconds is None:
        work_seconds = DEFAULT_WORK_MTBF_MULTIPLE * plan.system_mtbf
    return simulate_checkpoint_restart(
        work_seconds=work_seconds,
        interval=tau,
        write_time=write_time,
        n_nodes=plan.n_nodes,
        node_mtbf_seconds=plan.node_mtbf_seconds,
        seed=seed,
    )


def validate_young_daly(
    plan: CheckpointPlan,
    write_time: float,
    interval: float | None = None,
    seed: int = 0,
    work_seconds: float | None = None,
    tolerance: float = 0.2,
) -> ValidationResult:
    """Compare simulated overhead against ``plan.overhead_fraction``.

    The first-order model is only claimed in its own regime; reject
    parameter sets where the checkpoint write is not small against the
    interval, or the interval not small against the MTBF.
    """
    if tolerance <= 0:
        raise ConfigurationError("tolerance must be positive")
    tau = interval if interval is not None else plan.optimal_interval(write_time)
    mtbf = plan.system_mtbf
    if write_time > 0.5 * tau or tau > 0.5 * mtbf:
        raise ConfigurationError(
            "outside the Young/Daly regime: need write_time << interval "
            f"<< MTBF, got {write_time:.3g} / {tau:.3g} / {mtbf:.3g}"
        )
    stats = empirical_overhead(
        plan, write_time, interval=tau, seed=seed, work_seconds=work_seconds
    )
    return ValidationResult(
        analytical_overhead=plan.overhead_fraction(write_time, tau),
        empirical_overhead=stats.overhead_fraction,
        tolerance=tolerance,
        interval=tau,
        write_time=write_time,
        system_mtbf=mtbf,
        stats=stats,
    )
