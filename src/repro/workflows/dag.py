"""Task graphs executed on the discrete-event engine.

Plays the role Balsam and RAPTOR play in the paper's workflows: declare
tasks with durations, node requirements, facility placement and
dependencies; execute them with correct resource contention; read off the
makespan, per-facility utilisation and the critical path.

Tasks may additionally carry failure semantics (``failure_rate``,
``checkpoint_interval``/``checkpoint_write_time``): the executor then
retries failed attempts under a :class:`~repro.resilience.retry.RetryPolicy`
(releasing the nodes during backoff, as a real requeue does) and resumes
from the last committed checkpoint instead of restarting cold. With every
``failure_rate`` at zero the execution path — and every timestamp — is
identical to the fault-free executor.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.resilience.retry import RetryPolicy
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Resource
from repro.sim.trace import Trace
from repro.telemetry import Telemetry
from repro.workflows.facility import Facility

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience.report import ResilienceReport


@dataclass(frozen=True)
class Task:
    """One workflow task.

    ``duration`` is reference-machine seconds (rescaled by the facility's
    speed); ``nodes`` are acquired from the facility for the task's span.

    ``failure_rate`` is the expected number of failures per wall-clock
    second while the task runs (0 = never fails). ``checkpoint_interval``
    (wall-clock seconds on the placed facility, ``None`` = no checkpoints)
    commits progress every interval at a cost of ``checkpoint_write_time``
    seconds per write; a failed attempt then resumes from the last commit.
    """

    name: str
    duration: float
    facility: str
    nodes: int = 1
    deps: tuple[str, ...] = ()
    failure_rate: float = 0.0
    checkpoint_interval: float | None = None
    checkpoint_write_time: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"{self.name}: negative duration")
        if self.nodes < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")
        if self.failure_rate < 0:
            raise ConfigurationError(f"{self.name}: negative failure rate")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"{self.name}: checkpoint interval must be positive"
            )
        if self.checkpoint_write_time < 0:
            raise ConfigurationError(
                f"{self.name}: negative checkpoint write time"
            )


@dataclass
class WorkflowRun:
    """Results of executing a task graph.

    The resilience fields stay at their zero defaults when no task carries a
    ``failure_rate`` — an injection-free run is indistinguishable from the
    seed executor's output.
    """

    makespan: float
    start_times: dict[str, float]
    end_times: dict[str, float]
    trace: Trace = field(default_factory=Trace)
    attempts: dict[str, int] = field(default_factory=dict)
    n_failures: int = 0
    lost_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    # node-second accounting (node-weighted counterparts of the above):
    # busy = useful + lost + checkpoint, summed over every attempt
    busy_node_seconds: float = 0.0
    useful_node_seconds: float = 0.0
    lost_node_seconds: float = 0.0
    checkpoint_node_seconds: float = 0.0
    n_checkpoints: int = 0

    @property
    def n_retries(self) -> int:
        """Executions beyond each task's first attempt."""
        return sum(max(0, a - 1) for a in self.attempts.values())

    @property
    def goodput_fraction(self) -> float:
        """Useful node-seconds over occupied node-seconds (1.0 fault-free)."""
        if self.busy_node_seconds == 0:
            return 1.0
        return self.useful_node_seconds / self.busy_node_seconds

    @property
    def lost_node_hours(self) -> float:
        return self.lost_node_seconds / 3600.0

    def resilience_report(
        self,
        name: str = "workflow",
        node_mtbf_seconds: float | None = None,
    ) -> "ResilienceReport":
        """The workflow's failure accounting as a
        :class:`~repro.resilience.report.ResilienceReport`.

        The report is built in *node-seconds* (``n_nodes=1``): wall-clock is
        the occupied node-seconds across all attempts, so the report's
        ``goodput_fraction`` and ``lost_node_hours`` equal this run's
        properties of the same names exactly.
        """
        from repro.resilience.faults import DEFAULT_NODE_MTBF_SECONDS
        from repro.resilience.report import ResilienceReport

        return ResilienceReport(
            name=name,
            n_nodes=1,
            node_mtbf_seconds=(
                node_mtbf_seconds
                if node_mtbf_seconds is not None
                else DEFAULT_NODE_MTBF_SECONDS
            ),
            wall_seconds=self.busy_node_seconds,
            useful_seconds=self.useful_node_seconds,
            n_failures=self.n_failures,
            n_retries=self.n_retries,
            n_checkpoints=self.n_checkpoints,
            checkpoint_seconds=self.checkpoint_node_seconds,
            lost_seconds=self.lost_node_seconds,
        )

    def critical_path(self, graph: "TaskGraph") -> list[str]:
        """Chain of tasks ending at the latest finisher, following the
        dependency (or resource-wait) chain backwards greedily."""
        if not self.end_times:
            return []
        path = [max(self.end_times, key=self.end_times.get)]
        while True:
            task = graph.tasks[path[-1]]
            if not task.deps:
                break
            # predecessor that finished last gates this task
            gate = max(task.deps, key=lambda d: self.end_times[d])
            path.append(gate)
        return list(reversed(path))

    def facility_busy_node_seconds(self, graph: "TaskGraph") -> dict[str, float]:
        """Node-seconds consumed per facility."""
        out: dict[str, float] = {}
        for name, task in graph.tasks.items():
            span = self.end_times[name] - self.start_times[name]
            out[task.facility] = out.get(task.facility, 0.0) + span * task.nodes
        return out


def _attempt_timeline(
    left: float,
    interval: float | None,
    write_time: float,
    t_fail: float,
) -> tuple[float, float, int, bool]:
    """Timeline of one execution attempt, resolved analytically.

    ``left`` seconds of useful work remain; a failure strikes ``t_fail``
    wall-clock seconds into the attempt (infinity-like values mean never).
    Returns ``(wall, gained, writes, completed)``: the wall-clock the
    attempt held its nodes, the useful seconds newly committed, the number
    of completed checkpoint writes, and whether the task finished. Work
    since the last committed checkpoint — including a checkpoint write cut
    short by the failure — is lost.
    """
    if interval is None:
        # no checkpoints: all-or-nothing
        if t_fail >= left:
            return left, left, 0, True
        return t_fail, 0.0, 0, False
    wall = 0.0
    gained = 0.0
    writes = 0
    while gained < left:
        segment = min(interval, left - gained)
        if t_fail < wall + segment:  # failure mid-compute
            return t_fail, gained, writes, False
        wall += segment
        if gained + segment < left:  # commit requires a checkpoint write
            if t_fail < wall + write_time:  # failure mid-write: segment lost
                return t_fail, gained, writes, False
            wall += write_time
            writes += 1
        gained += segment
    return wall, gained, writes, True


class TaskGraph:
    """A DAG of :class:`Task` objects with validation and execution."""

    def __init__(self, facilities: dict[str, Facility]):
        if not facilities:
            raise ConfigurationError("need at least one facility")
        self.facilities = facilities
        self.tasks: dict[str, Task] = {}

    def add(self, task: Task) -> None:
        if task.name in self.tasks:
            raise ConfigurationError(f"duplicate task {task.name!r}")
        if task.facility not in self.facilities:
            raise ConfigurationError(
                f"{task.name}: unknown facility {task.facility!r}"
            )
        facility = self.facilities[task.facility]
        if task.nodes > facility.nodes:
            raise ConfigurationError(
                f"{task.name}: needs {task.nodes} nodes, {facility.name} has "
                f"{facility.nodes}"
            )
        for dep in task.deps:
            if dep not in self.tasks:
                raise ConfigurationError(
                    f"{task.name}: dependency {dep!r} not yet added "
                    "(add tasks in topological order)"
                )
        self.tasks[task.name] = task

    def add_task(
        self,
        name: str,
        duration: float,
        facility: str,
        nodes: int = 1,
        deps: tuple[str, ...] | list[str] = (),
        failure_rate: float = 0.0,
        checkpoint_interval: float | None = None,
        checkpoint_write_time: float = 0.0,
    ) -> Task:
        """Convenience builder."""
        task = Task(
            name=name, duration=duration, facility=facility,
            nodes=nodes, deps=tuple(deps),
            failure_rate=failure_rate,
            checkpoint_interval=checkpoint_interval,
            checkpoint_write_time=checkpoint_write_time,
        )
        self.add(task)
        return task

    def execute(
        self,
        retry: RetryPolicy | None = None,
        seed: int = 0,
        telemetry: Telemetry | None = None,
        engine_impl: str | None = None,
    ) -> WorkflowRun:
        """Run the DAG with resource contention; returns timing results.

        Tasks with a positive ``failure_rate`` are retried under ``retry``
        (defaults to :class:`RetryPolicy` when any task can fail), resuming
        from their last committed checkpoint. ``seed`` drives the per-task
        failure draws; the same seed reproduces the exact same failure
        times, retry counts and makespan. ``engine_impl`` selects the
        discrete-event scheduler (``heap`` | ``calendar``; default: the
        engine's ``REPRO_ENGINE_IMPL`` knob) — execution is byte-identical
        either way.

        With a ``telemetry`` handle the executor additionally records one
        span per task attempt (facility "workflow"), per-node occupancy
        spans on each placed facility's tracks (when the facility is small
        enough for per-node tracks — see
        :attr:`~repro.telemetry.Telemetry.max_node_tracks`), fault/restore
        instant events, and the metrics the run summary reports. The
        telemetry-off path, and every returned number, is unchanged.
        """
        if not self.tasks:
            raise ConfigurationError("empty task graph")
        if retry is None:
            retry = RetryPolicy()
        engine = Engine(telemetry, impl=engine_impl)
        pools = {
            key: Resource(engine, fac.nodes, name=fac.name)
            for key, fac in self.facilities.items()
        }
        run = WorkflowRun(
            makespan=0.0, start_times={}, end_times={},
            trace=Trace(telemetry),
        )
        procs: dict[str, object] = {}
        # deterministic node-index assignment for per-node trace tracks
        free_nodes = {
            key: list(range(fac.nodes))
            for key, fac in self.facilities.items()
        }

        def open_attempt(task: Task, attempt: int):
            """Begin the attempt span and (on small facilities) node spans."""
            fac = self.facilities[task.facility]
            assert telemetry is not None
            attempt_span = telemetry.begin(
                task.name if attempt == 1 else f"{task.name}#{attempt}",
                "task", facility="workflow", track=task.name,
                attempt=attempt, nodes=task.nodes, placed=fac.name,
            )
            node_spans: list = []
            assigned: list[int] = []
            if fac.nodes <= telemetry.max_node_tracks:
                pool_free = free_nodes[task.facility]
                assigned = pool_free[: task.nodes]
                del pool_free[: task.nodes]
                node_spans = [
                    telemetry.begin(
                        task.name, "node", facility=fac.name,
                        track=f"node {i}", parent=attempt_span,
                        attempt=attempt,
                    )
                    for i in assigned
                ]
            return attempt_span, node_spans, assigned

        def close_attempt(
            task: Task, opened, wall: float, gained: float,
            ckpt: float, lost: float, completed: bool,
        ) -> None:
            assert telemetry is not None
            attempt_span, node_spans, assigned = opened
            telemetry.end(
                attempt_span, wall=wall, gained=gained, completed=completed
            )
            for node_span in node_spans:
                telemetry.end(node_span)
            pool_free = free_nodes[task.facility]
            pool_free.extend(assigned)
            pool_free.sort()
            m = telemetry.metrics
            m.histogram("dag.attempt_seconds").record(wall)
            m.counter("dag.busy_node_seconds").inc(wall * task.nodes)
            m.counter("dag.useful_node_seconds").inc(gained * task.nodes)
            m.counter("dag.checkpoint_node_seconds").inc(ckpt * task.nodes)
            m.counter("dag.lost_node_seconds").inc(lost * task.nodes)

        def account(task: Task, wall, gained, writes, completed) -> tuple:
            """Node-second accounting shared by run fields and metrics."""
            ckpt = writes * task.checkpoint_write_time
            lost = 0.0 if completed else wall - gained - ckpt
            run.busy_node_seconds += wall * task.nodes
            run.useful_node_seconds += gained * task.nodes
            run.checkpoint_node_seconds += ckpt * task.nodes
            run.lost_node_seconds += lost * task.nodes
            run.n_checkpoints += writes
            return ckpt, lost

        def task_proc(task: Task, index: int):
            for dep in task.deps:
                yield procs[dep]
            duration = self.facilities[task.facility].duration(task.duration)
            if task.failure_rate == 0.0:
                # fault-free fast path: byte-for-byte the seed executor
                yield pools[task.facility].acquire(task.nodes)
                run.start_times[task.name] = engine.now
                run.trace.record(
                    engine.now, "start", task.name, {"nodes": task.nodes}
                )
                opened = open_attempt(task, 1) if telemetry else None
                yield Timeout(duration)
                pools[task.facility].release(task.nodes)
                run.end_times[task.name] = engine.now
                run.trace.record(
                    engine.now, "end", task.name, duration=duration
                )
                run.attempts[task.name] = 1
                ckpt, lost = account(task, duration, duration, 0, True)
                if telemetry is not None:
                    close_attempt(task, opened, duration, duration,
                                  ckpt, lost, True)
                    telemetry.metrics.histogram(
                        "dag.task_seconds"
                    ).record(duration)
                    telemetry.metrics.counter("dag.tasks_completed").inc()
                return
            # resilient path: retry loop with checkpoint-restart
            rng = np.random.default_rng([seed, index])
            committed = 0.0
            attempts = 0
            while True:
                yield pools[task.facility].acquire(task.nodes)
                if attempts == 0:
                    run.start_times[task.name] = engine.now
                    run.trace.record(
                        engine.now, "start", task.name, {"nodes": task.nodes}
                    )
                attempts += 1
                if telemetry is not None:
                    opened = open_attempt(task, attempts)
                    if attempts > 1 and committed > 0.0:
                        telemetry.instant(
                            f"restore:{task.name}", "checkpoint",
                            facility="workflow", track=task.name,
                            committed=committed, attempt=attempts,
                        )
                t_fail = float(rng.exponential(1.0 / task.failure_rate))
                wall, gained, writes, completed = _attempt_timeline(
                    duration - committed,
                    task.checkpoint_interval,
                    task.checkpoint_write_time,
                    t_fail,
                )
                yield Timeout(wall)
                pools[task.facility].release(task.nodes)
                committed += gained
                run.checkpoint_seconds += writes * task.checkpoint_write_time
                ckpt, lost = account(task, wall, gained, writes, completed)
                if telemetry is not None:
                    close_attempt(task, opened, wall, gained,
                                  ckpt, lost, completed)
                    telemetry.metrics.counter(
                        "dag.checkpoint_writes"
                    ).inc(writes)
                if completed:
                    run.end_times[task.name] = engine.now
                    run.trace.record(
                        engine.now, "end", task.name, duration=duration
                    )
                    run.attempts[task.name] = attempts
                    if telemetry is not None:
                        telemetry.metrics.histogram(
                            "dag.task_seconds"
                        ).record(
                            run.end_times[task.name]
                            - run.start_times[task.name]
                        )
                        telemetry.metrics.counter("dag.tasks_completed").inc()
                    return
                run.n_failures += 1
                run.lost_seconds += (
                    wall - gained - writes * task.checkpoint_write_time
                )
                run.trace.record(
                    engine.now, "failure", task.name, {"attempt": attempts}
                )
                if telemetry is not None:
                    telemetry.instant(
                        f"failure:{task.name}", "fault",
                        facility="workflow", track=task.name,
                        attempt=attempts, lost_seconds=lost,
                    )
                    telemetry.metrics.counter("dag.failures").inc()
                if retry.exhausted(attempts):
                    raise SimulationError(
                        f"task {task.name!r} failed {attempts} times "
                        "(retry budget exhausted)"
                    )
                backoff = retry.delay(attempts, rng)
                run.trace.record(
                    engine.now, "retry", task.name, duration=backoff
                )
                if telemetry is not None:
                    telemetry.metrics.counter("dag.retries").inc()
                    backoff_span = telemetry.begin(
                        f"backoff:{task.name}", "backoff",
                        facility="workflow", track=task.name,
                        attempt=attempts,
                    )
                yield Timeout(backoff)
                if telemetry is not None:
                    telemetry.end(backoff_span)

        for index, (name, task) in enumerate(self.tasks.items()):
            procs[name] = engine.spawn(task_proc(task, index), name=name)
        engine.run()

        if len(run.end_times) != len(self.tasks):
            missing = set(self.tasks) - set(run.end_times)
            raise SimulationError(f"tasks never completed: {sorted(missing)}")
        run.makespan = max(run.end_times.values())
        if telemetry is not None:
            telemetry.metrics.gauge("dag.makespan_seconds").set(run.makespan)
            telemetry.metrics.gauge(
                "dag.goodput_fraction"
            ).set(run.goodput_fraction)
            telemetry.metrics.gauge(
                "dag.lost_node_hours"
            ).set(run.lost_node_hours)
        return run

    def serial_time(self) -> float:
        """Sum of all task durations on their placed facilities — the
        no-concurrency baseline a coordinated workflow is compared against."""
        return sum(
            self.facilities[t.facility].duration(t.duration)
            for t in self.tasks.values()
        )
