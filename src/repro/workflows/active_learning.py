"""Generic active-learning loop for surrogate refinement.

The "ML + modsim loop" motif (Table I): an expensive oracle (first-
principles energy, MD free energy) labels a few points; a cheap surrogate
generalises; uncertainty decides what to label next. Zhang et al.'s
"active learning of uniformly accurate interatomic potentials" — cited by
the paper as the theory-backed success story — is this loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.surrogate import EnsembleSurrogate


@dataclass
class ActiveLearningResult:
    """History of an active-learning run."""

    oracle_calls: int
    rounds: int
    rmse_history: list[float]  # validation RMSE after each round
    train_x: np.ndarray
    train_y: np.ndarray

    @property
    def final_rmse(self) -> float:
        return self.rmse_history[-1]


class ActiveLearningLoop:
    """Pool-based active learning with an ensemble surrogate.

    Parameters
    ----------
    oracle:
        Expensive labeller: (n, d) -> (n, k). Every call is counted.
    pool:
        Candidate inputs the learner may query.
    validation:
        Held-out (x, y) used only for the RMSE history.
    """

    def __init__(
        self,
        oracle: Callable[[np.ndarray], np.ndarray],
        pool: np.ndarray,
        validation: tuple[np.ndarray, np.ndarray],
        n_members: int = 4,
        hidden: list[int] | None = None,
        surrogate_kind: str = "ensemble",
        gp_length_scale: float = 0.5,
        seed: int | None = None,
    ):
        pool = np.atleast_2d(np.asarray(pool, dtype=float))
        if pool.shape[0] < 2:
            raise ConfigurationError("pool must contain at least two candidates")
        if surrogate_kind not in ("ensemble", "gp"):
            raise ConfigurationError(
                f"surrogate_kind must be 'ensemble' or 'gp', got {surrogate_kind!r}"
            )
        self.oracle = oracle
        self.pool = pool
        self.val_x = np.atleast_2d(np.asarray(validation[0], dtype=float))
        self.val_y = np.atleast_2d(np.asarray(validation[1], dtype=float))
        if self.val_x.shape[0] != self.val_y.shape[0]:
            raise ConfigurationError("validation x/y row mismatch")
        if surrogate_kind == "gp" and self.val_y.shape[1] != 1:
            raise ConfigurationError("the GP surrogate supports scalar targets")
        self.n_members = n_members
        self.hidden = hidden
        self.surrogate_kind = surrogate_kind
        self.gp_length_scale = gp_length_scale
        self.seed = seed

    def run(
        self,
        initial: int = 16,
        per_round: int = 8,
        n_rounds: int = 5,
        epochs: int = 150,
        random_acquisition: bool = False,
    ) -> ActiveLearningResult:
        """Run the loop; ``random_acquisition`` gives the ablation baseline."""
        if initial < 2 or per_round < 1 or n_rounds < 1:
            raise ConfigurationError("bad loop sizes")
        if initial + per_round * n_rounds > self.pool.shape[0]:
            raise ConfigurationError("pool too small for the requested budget")
        rng = np.random.default_rng(self.seed)
        remaining = np.arange(self.pool.shape[0])
        chosen = rng.choice(remaining, size=initial, replace=False)
        remaining = np.setdiff1d(remaining, chosen)

        train_x = self.pool[chosen]
        train_y = np.atleast_2d(np.asarray(self.oracle(train_x), dtype=float))
        if train_y.shape[0] != train_x.shape[0]:
            raise ConfigurationError("oracle must return one label row per input")
        oracle_calls = train_x.shape[0]

        rmse_history: list[float] = []
        for round_idx in range(n_rounds):
            surrogate = self._fit_surrogate(train_x, train_y, epochs)
            pred, _ = surrogate.predict(self.val_x)
            pred = np.atleast_2d(np.asarray(pred))
            if pred.shape != self.val_y.shape:
                pred = pred.reshape(self.val_y.shape)
            rmse_history.append(
                float(np.sqrt(np.mean((pred - self.val_y) ** 2)))
            )
            if round_idx == n_rounds - 1:
                break

            if random_acquisition:
                pick = rng.choice(remaining, size=per_round, replace=False)
            else:
                scores = np.asarray(
                    surrogate.acquisition(self.pool[remaining])
                ).ravel()
                pick = remaining[np.argsort(scores)[-per_round:]]
            new_y = np.atleast_2d(np.asarray(self.oracle(self.pool[pick]), dtype=float))
            oracle_calls += len(pick)
            train_x = np.vstack([train_x, self.pool[pick]])
            train_y = np.vstack([train_y, new_y])
            remaining = np.setdiff1d(remaining, pick)

        return ActiveLearningResult(
            oracle_calls=oracle_calls,
            rounds=n_rounds,
            rmse_history=rmse_history,
            train_x=train_x,
            train_y=train_y,
        )

    def _fit_surrogate(self, train_x: np.ndarray, train_y: np.ndarray,
                       epochs: int):
        if self.surrogate_kind == "gp":
            from repro.ml.gp import GaussianProcess

            return GaussianProcess(
                length_scale=self.gp_length_scale, noise=1e-6
            ).fit(train_x, train_y.ravel())
        surrogate = EnsembleSurrogate(
            n_features=self.pool.shape[1],
            n_outputs=train_y.shape[1],
            n_members=self.n_members,
            hidden=self.hidden,
            seed=self.seed,
        )
        return surrogate.fit(train_x, train_y, epochs=epochs)
