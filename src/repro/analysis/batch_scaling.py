"""Empirical critical-batch experiment on the real ML stack.

The convergence model of :mod:`repro.training.convergence` asserts the
two-regime law ``steps(B) = S_min (1/B + 1/B_crit)``. This module *measures*
it: train the real numpy MLP on a fixed problem at several batch sizes,
record steps to a target loss, and fit the law. It closes the loop between
the analytic scaling story and the runnable ML substrate — and demonstrates
the LARS/LAMB large-batch advantage empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cost import kernels
from repro.errors import ConfigurationError, ConvergenceError
from repro.ml.mlp import MLP
from repro.ml.losses import mse
from repro.optim.base import Optimizer


@dataclass(frozen=True)
class BatchScalingResult:
    """Measured steps-to-target across batch sizes, plus the fitted law."""

    batch_sizes: list[int]
    steps_to_target: list[int]
    fitted_min_samples: float
    fitted_critical_batch: float

    def speedup(self) -> list[float]:
        """Step-count speedup relative to the smallest batch."""
        base = self.steps_to_target[0]
        return [base / s for s in self.steps_to_target]

    def predicted_steps(self, batch):
        """Fitted two-regime law evaluated at ``batch`` (scalar or array),
        via the shared :func:`repro.cost.kernels.two_regime_steps` kernel."""
        return kernels.two_regime_steps(
            batch, self.fitted_min_samples, self.fitted_critical_batch
        )


def _make_problem(seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(2048, 6))
    y = np.column_stack([
        np.sin(x[:, 0] * x[:, 1]),
        (x[:, 2:4] ** 2).sum(axis=1) * 0.3,
    ])
    return x, y


def steps_to_loss(
    optimizer_factory: Callable[[], Optimizer],
    batch_size: int,
    target_loss: float = 0.08,
    max_steps: int = 8000,
    seed: int = 0,
    lr_rule: str = "sqrt",
    base_batch: int = 16,
) -> int:
    """Steps of minibatch training until the full-data loss <= target.

    ``lr_rule`` rescales the optimizer's learning rate with the batch size
    relative to ``base_batch``: "sqrt" (stable for all batch sizes here),
    "linear" (the Goyal rule; diverges without warmup at large batch), or
    "none".
    """
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    if lr_rule not in ("sqrt", "linear", "none"):
        raise ConfigurationError(f"unknown lr_rule {lr_rule!r}")
    x, y = _make_problem(seed)
    net = MLP([6, 48, 2], seed=seed)
    opt = optimizer_factory()
    ratio = batch_size / base_batch
    if lr_rule == "sqrt":
        opt.lr *= np.sqrt(ratio)
    elif lr_rule == "linear":
        opt.lr *= ratio
    rng = np.random.default_rng(seed + 1)
    n = x.shape[0]
    for step in range(1, max_steps + 1):
        idx = rng.integers(0, n, size=batch_size)
        pred = net.forward(x[idx])
        _, grad = mse(pred, y[idx])
        net.backward(grad)
        opt.step(net.parameters, net.gradients)
        if step % 10 == 0:
            loss, _ = mse(net.forward(x), y)
            if loss <= target_loss:
                return step
    raise ConvergenceError(
        f"did not reach loss {target_loss} in {max_steps} steps at batch "
        f"{batch_size}"
    )


def fit_two_regime_law(
    batch_sizes: list[int], steps: list[int]
) -> tuple[float, float]:
    """Least-squares fit of steps(B) = S_min / B + S_min / B_crit.

    Linear in (a, b) with steps = a * (1/B) + b: a = S_min,
    b = S_min / B_crit.
    """
    if len(batch_sizes) != len(steps) or len(batch_sizes) < 2:
        raise ConfigurationError("need >= 2 congruent measurement points")
    inv_b = np.array([1.0 / b for b in batch_sizes])
    design = np.column_stack([inv_b, np.ones_like(inv_b)])
    coef, *_ = np.linalg.lstsq(design, np.array(steps, dtype=float), rcond=None)
    a, b = float(coef[0]), float(coef[1])
    if a <= 0:
        raise ConvergenceError("fit degenerate: non-positive S_min")
    b = max(b, 1e-9)
    return a, a / b


def run_batch_scaling_experiment(
    optimizer_factory: Callable[[], Optimizer],
    batch_sizes: list[int] | None = None,
    target_loss: float = 0.08,
    seed: int = 0,
    lr_rule: str = "sqrt",
) -> BatchScalingResult:
    """Measure steps-to-target across batch sizes and fit the law."""
    batch_sizes = batch_sizes or [16, 64, 256, 1024]
    steps = [
        steps_to_loss(
            optimizer_factory, b, target_loss=target_loss, seed=seed,
            lr_rule=lr_rule,
        )
        for b in batch_sizes
    ]
    min_samples, critical = fit_two_regime_law(batch_sizes, steps)
    return BatchScalingResult(
        batch_sizes=list(batch_sizes),
        steps_to_target=steps,
        fitted_min_samples=min_samples,
        fitted_critical_batch=critical,
    )
