"""Table II — science domains and subdomains."""

from conftest import report

from repro.portfolio import DOMAIN_SUBDOMAINS, Domain, generate_portfolio
from repro.portfolio.taxonomy import subdomain_domain


def test_table2_domain_taxonomy(benchmark):
    projects = generate_portfolio()

    def roundtrip():
        # classify every project's subdomain back to its domain — the
        # paper's "adjusted ... subdomain assignments" step
        return [subdomain_domain(p.subdomain) for p in projects]

    domains = benchmark(roundtrip)

    assert len(Domain) == 9
    assert all(d is p.domain for d, p in zip(domains, projects))

    report(
        "Table II — domains and subdomain counts",
        [(d.value, len(DOMAIN_SUBDOMAINS[d])) for d in Domain],
        header=("domain", "subdomains"),
    )
