"""Scheduler benchmarks: capability computing and delivered AI hours.

Section II-B: OLCF allocates by "the ability and need to take advantage of
the full capability afforded by leadership resources". The ablation shows
what the capability queue policy buys (wide-job wait) and costs (mean
wait); the campaign benchmark computes the AI/ML share of *delivered*
node-hours, the alternative metric Section II-C discusses.
"""

import numpy as np
from _record import record, timed
from conftest import report

from repro.portfolio import generate_portfolio
from repro.scheduler import Policy, Scheduler, campaign_from_portfolio


def _campaign(n_projects=250, seed=1):
    projects = generate_portfolio()
    rng = np.random.default_rng(seed)
    sample = [projects[i] for i in rng.choice(len(projects), n_projects,
                                              replace=False)]
    return campaign_from_portfolio(
        sample, jobs_per_project=4, horizon=24 * 3600.0, seed=0
    )


def test_scheduler_policy_ablation(benchmark):
    jobs = _campaign()

    def run():
        return {
            policy: Scheduler(4608, policy).run(jobs)
            for policy in (Policy.FIFO, Policy.CAPABILITY, Policy.SMALLEST_FIRST)
        }

    with timed() as t:
        results = benchmark.pedantic(run, rounds=1, iterations=1)

    cap = results[Policy.CAPABILITY]
    fifo = results[Policy.FIFO]
    small = results[Policy.SMALLEST_FIRST]
    assert cap.mean_wait_wide < fifo.mean_wait_wide
    assert small.mean_wait_wide > cap.mean_wait_wide
    assert cap.utilization > 0.8

    record(
        "scheduler_ablation",
        {
            "n_jobs": len(jobs),
            **{
                p.value: {
                    "utilization": r.utilization,
                    "mean_wait_seconds": r.mean_wait,
                    "mean_wait_wide_seconds": r.mean_wait_wide,
                }
                for p, r in results.items()
            },
        },
        wall_seconds=t.seconds,
    )
    report(
        "Scheduler ablation — 1000-job day on Summit",
        [
            (p.value,
             f"{r.utilization:.0%}",
             f"{r.mean_wait / 3600:.1f} h",
             f"{r.mean_wait_wide / 3600:.1f} h")
            for p, r in results.items()
        ],
        header=("policy", "utilization", "mean wait", "wide-job wait"),
    )


def test_scheduler_delivered_ai_hours(benchmark):
    jobs = _campaign()

    def run():
        return Scheduler(4608, Policy.CAPABILITY).run(jobs)

    with timed() as t:
        result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert 0.2 < result.ai_share < 0.8

    record(
        "scheduler_delivered_ai_hours",
        {
            "delivered_node_hours": result.delivered_node_hours,
            "ai_node_hours": result.ai_node_hours,
            "ai_share": result.ai_share,
        },
        wall_seconds=t.seconds,
    )
    report(
        "Delivered node-hours by AI/ML usage (Section II-C's alternative metric)",
        [
            ("delivered total", f"{result.delivered_node_hours:,.0f} node-h"),
            ("AI/ML projects", f"{result.ai_node_hours:,.0f} node-h"),
            ("AI/ML share", f"{result.ai_share:.0%}"),
        ],
        header=("metric", "value"),
    )
