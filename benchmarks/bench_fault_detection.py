"""Fault-detection motif benchmark (Table I, row 1).

"detect algorithmic or other failure in execution, send signal for
automatic or manual remediation" — an autoencoder watches MD health
observables, catches injected integration faults, and rolls the simulation
back; the benchmark checks recall and false-alarm rate.
"""

from conftest import report

from repro.workflows.case_fault import FaultDetectionWorkflow


def test_fault_detection_workflow(benchmark):
    def run():
        workflow = FaultDetectionWorkflow(seed=0)
        workflow.train_detector()
        return workflow.run(n_frames=100, fault_probability=0.05)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.recall >= 0.75
    assert result.false_alarms <= 5
    assert result.final_energy_finite

    report(
        "Fault-detection motif — AE-monitored MD campaign",
        [
            ("frames monitored", result.frames),
            ("faults injected", result.faults_injected),
            ("faults detected", result.faults_detected),
            ("recall", f"{result.recall:.0%}"),
            ("false alarms", result.false_alarms),
            ("rollbacks (remediations)", result.rollbacks),
            ("campaign ended healthy", str(result.final_energy_finite)),
        ],
        header=("metric", "value"),
    )
