"""LAMB — Layer-wise Adaptive Moments for Batch training (You et al.).

The optimizer behind Khan et al. (Section IV-B.4) and Blanchard et al.'s
5.8-million global batch (Section IV-B.5): the Adam direction per layer,
rescaled by the LARS trust ratio. The trust ratio is clipped to
``[0, clip]`` as in the reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.optim.adam import Adam
from repro.optim.base import trust_ratio


class LAMB(Adam):
    """LAMB = Adam direction x layer-wise trust ratio."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-6,
        weight_decay: float = 0.01,
        clip: float = 10.0,
    ):
        super().__init__(lr, beta1, beta2, eps, weight_decay)
        if clip <= 0:
            raise ConfigurationError("trust-ratio clip must be positive")
        self.clip = clip

    def _update(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._ensure_state(params)
        for i, (p, g) in enumerate(zip(params, grads)):
            direction = self.adam_direction(i, p, g)
            ratio = min(trust_ratio(p, direction), self.clip)
            p -= self.lr * ratio * direction
