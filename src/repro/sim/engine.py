"""Generator-based discrete-event engine.

A *process* is a Python generator that yields effects:

- ``Timeout(dt)`` — advance simulated time by ``dt`` seconds;
- ``Process`` — wait for a child process to finish (its return value is sent
  back into the parent);
- ``Resource.acquire()`` request objects — wait for capacity.

The engine is deterministic: simultaneous events fire in creation order.

Processes are *interruptible*: :meth:`Process.interrupt` throws an
:class:`Interrupt` into the generator at its current wait point, whether it
is sleeping in a ``Timeout``, waiting on a child process, or queued for a
resource. This is how node failures reach the work running on the failed
nodes (see :mod:`repro.resilience`): the victim catches the ``Interrupt``,
rolls back to its last checkpoint, and resumes. A process that does not
catch the ``Interrupt`` is killed (``proc.killed`` is set and waiters are
woken with ``None``).

Example
-------
>>> eng = Engine()
>>> def job(eng):
...     yield Timeout(2.0)
...     return "done"
>>> p = eng.spawn(job(eng))
>>> eng.run()
>>> p.result
'done'
>>> eng.now
2.0
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Generator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


@dataclass(frozen=True, slots=True)
class Timeout:
    """Effect: advance the yielding process by ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (e.g. the failure event that killed
    the process's nodes). Catch it at the yield point to implement
    checkpoint-restart; let it propagate to have the engine kill the process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Throw:
    """Internal send-value marker: deliver by ``gen.throw`` not ``gen.send``."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class Process:
    """A running simulated process wrapping a generator.

    ``__slots__`` keeps the per-process footprint flat: large simulations
    (scheduler ensembles, fault sweeps) allocate thousands of these on the
    hot path.
    """

    __slots__ = (
        "engine", "gen", "name", "finished", "killed", "result",
        "started_at", "finished_at", "_waiters", "_epoch", "_waiting_on",
        "_tel_span",
    )

    def __init__(self, engine: Engine, gen: Generator, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.killed = False  # finished via an uncaught Interrupt
        self.result: Any = None
        self.started_at = engine.now
        self.finished_at: float | None = None
        self._waiters: list[Process] = []
        self._epoch = 0  # bumped on interrupt; stale heap entries are skipped
        self._waiting_on: Any = None  # Process | resource request | None
        self._tel_span: Any = None  # open telemetry span, when instrumented

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into this process at its current wait.

        Returns ``False`` (and does nothing) if the process already finished.
        """
        return self.engine._interrupt(self, cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Engine:
    """The event loop: a heap of (time, seq, epoch, process, value_to_send).

    ``telemetry`` is the opt-in observability handle
    (:class:`repro.telemetry.Telemetry`): when supplied, the engine binds
    its clock to simulated time and records one span per process lifetime
    plus an instant event per interrupt. When ``None`` (the default) no
    telemetry code runs — the hot path is the uninstrumented seed path.
    """

    __slots__ = ("now", "telemetry", "_heap", "_seq", "_active", "_current")

    def __init__(self, telemetry: "Telemetry | None" = None):
        self.now = 0.0
        self.telemetry = telemetry
        self._heap: list[tuple[float, int, int, Process, Any]] = []
        self._seq = itertools.count()
        self._active = 0
        self._current: Process | None = None  # process being stepped
        if telemetry is not None:
            telemetry.bind_clock(lambda: self.now)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a new process and schedule its first step at ``now``."""
        proc = Process(self, gen, name)
        self._active += 1
        self._schedule(self.now, proc, None)
        if self.telemetry is not None:
            proc._tel_span = self.telemetry.begin(
                proc.name, "process", facility="engine", track=proc.name
            )
        return proc

    def _schedule(self, when: float, proc: Process, send_value: Any) -> None:
        heapq.heappush(
            self._heap, (when, next(self._seq), proc._epoch, proc, send_value)
        )

    def run(self, until: float | None = None) -> None:
        """Run until no events remain, or simulated time would pass ``until``.

        One heap pop per event: entries whose epoch was bumped by an
        interrupt are discarded lazily as they surface (never re-popped
        eagerly), and an entry beyond ``until`` is pushed back once — the
        rare case — instead of peeking the heap top on every iteration.

        Leaving the loop — even on an exception — flushes any telemetry
        sink: a run boundary is a quiescent point, so spilled shards reach
        disk without waiting for the handle to be closed.
        """
        heap = self._heap
        try:
            while heap:
                entry = heapq.heappop(heap)
                when, _, epoch, proc, send_value = entry
                if epoch != proc._epoch:  # cancelled by an interrupt
                    continue
                if until is not None and when > until:
                    heapq.heappush(heap, entry)
                    self.now = until
                    return
                if when < self.now:
                    raise SimulationError("event scheduled in the past")
                self.now = when
                self._step(proc, send_value)
            if until is not None:
                self.now = max(self.now, until)
        finally:
            if self.telemetry is not None:
                self.telemetry.flush()

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.finished:
            raise SimulationError(f"stepping finished process {proc.name}")
        proc._waiting_on = None
        self._current = proc
        try:
            if isinstance(send_value, _Throw):
                effect = proc.gen.throw(send_value.exc)
            else:
                effect = proc.gen.send(send_value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except Interrupt:
            # the process chose not to handle the interrupt: kill it
            proc.killed = True
            self._finish(proc, None)
            return
        finally:
            self._current = None
        self._dispatch(proc, effect)

    def _dispatch(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Timeout):
            self._schedule(self.now + effect.delay, proc, None)
        elif isinstance(effect, Process):
            if effect.finished:
                self._schedule(self.now, proc, effect.result)
            else:
                proc._waiting_on = effect
                effect._waiters.append(proc)
        elif hasattr(effect, "_bind_waiter"):  # resource requests
            proc._waiting_on = effect
            effect._bind_waiter(proc)
        else:
            raise SimulationError(f"process {proc.name} yielded {effect!r}")

    def _finish(self, proc: Process, result: Any) -> None:
        proc.finished = True
        proc.result = result
        proc.finished_at = self.now
        self._active -= 1
        if self.telemetry is not None and proc._tel_span is not None:
            self.telemetry.end(proc._tel_span, killed=proc.killed)
            proc._tel_span = None
        for waiter in proc._waiters:
            waiter._waiting_on = None
            self._schedule(self.now, waiter, result)
        proc._waiters.clear()

    def _interrupt(self, proc: Process, cause: Any) -> bool:
        if proc.finished:
            return False
        # detach from whatever the process is waiting on
        waiting_on = proc._waiting_on
        if isinstance(waiting_on, Process):
            if proc in waiting_on._waiters:
                waiting_on._waiters.remove(proc)
        elif waiting_on is not None and hasattr(waiting_on, "_cancel"):
            waiting_on._cancel(proc)
        proc._waiting_on = None
        proc._epoch += 1  # invalidate any pending heap entry for this process
        self._schedule(self.now, proc, _Throw(Interrupt(cause)))
        if self.telemetry is not None:
            self.telemetry.instant(
                f"interrupt:{proc.name}", "engine",
                facility="engine", track=proc.name, cause=cause,
            )
        return True

    # Resources use this to resume a blocked process.
    def _resume(self, proc: Process, value: Any) -> None:
        self._schedule(self.now, proc, value)
