"""A year of whole-facility operation in single-digit wall-clock seconds.

The capstone for the vectorized timer banks (ROADMAP item 2): replay one
simulated year of Summit-scale operation — 4 608 nodes, a utilization-
targeted synthetic stream of ~80 k jobs, exponential node failures with
checkpoint/requeue churn — through the scheduler's bank mode, and time it.
Three legs:

- **year replay** — :func:`~repro.scheduler.jobs.synthetic_facility_year`
  through ``Scheduler.run(timer_bank=True)`` with a
  :class:`~repro.scheduler.faults.FaultModel`; the ratchet pins simulated
  seconds per wall-clock second, so the floor rises as the code speeds up
  regardless of host pace, and full mode asserts the paper-shaped headline
  (a year in <= 10 s of wall-clock);
- **bank drain** — one million homogeneous timers as a single vectorized
  :class:`~repro.sim.timerbank.TimerBank` versus the same bank in object
  fallback (per-lane ``Timer`` plans on the calendar engine, the PR-9 fast
  path); the drain-phase speedup is the ISSUE's >= 5x floor;
- **parity** — a shorter window replayed bank-on and bank-off must agree
  field for field (``ScheduleResult`` equality), and the drain legs must
  agree on the final clock and fire count. Determinism is the contract;
  speed is the payoff.

GC is disabled inside the timed drains (both variants equally), matching
``bench_engine.py``. Set ``REPRO_SMOKE=1`` for the small CI tier; scalars
land in ``BENCH_facility_year.json`` and ``check_engine_floor.py``
ratchets them against ``facility_year_floor.json``.
"""

from __future__ import annotations

import gc
import os
import time

from _record import record
from conftest import report

from repro.scheduler.faults import FaultModel
from repro.scheduler.jobs import synthetic_facility_year
from repro.scheduler.simulator import Scheduler
from repro.sim.engine import Engine
from repro.sim.timerbank import TimerBank

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

#: Machine size and horizon per tier. Full is Summit for one year; smoke
#: is a small machine for a month so CI stays fast.
N_NODES = 256 if SMOKE else 4608
HORIZON = (30.0 if SMOKE else 365.0) * 86400.0

#: Timer count for the homogeneous-drain leg.
DRAIN_N = 50_000 if SMOKE else 1_000_000

#: Full-mode wall-clock ceiling for the year replay (the headline claim).
MAX_YEAR_WALL_SECONDS = 10.0

#: Required bank-over-object drain speedup, full tier.
MIN_BANK_SPEEDUP = 5.0

#: Parity-check horizon: short enough to replay twice cheaply.
PARITY_HORIZON = (7.0 if SMOKE else 30.0) * 86400.0


def _drain(vectorized: bool) -> tuple[float, float, int]:
    """Drain ``DRAIN_N`` homogeneous timers; return (wall, now, fired)."""
    eng = Engine(impl="calendar")
    bank = TimerBank(
        eng, [3600.0] * DRAIN_N, name="drain", vectorized=vectorized
    )
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        eng.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    return wall, eng.now, bank.n_fired


def test_facility_year():
    # -- leg 1: the year (or month) replay, bank mode, with faults --------
    t0 = time.perf_counter()
    jobs = synthetic_facility_year(
        seed=0, n_nodes=N_NODES, horizon=HORIZON
    )
    gen_wall = time.perf_counter() - t0
    faults = FaultModel(checkpoint_interval=3600.0, seed=0)
    t0 = time.perf_counter()
    result = Scheduler(N_NODES).run(jobs, faults=faults, timer_bank=True)
    year_wall = time.perf_counter() - t0
    sim_per_wall = result.makespan / year_wall
    if not SMOKE:
        assert year_wall <= MAX_YEAR_WALL_SECONDS, (
            f"facility year took {year_wall:.2f}s wall-clock "
            f"(need <= {MAX_YEAR_WALL_SECONDS}s)"
        )

    # -- leg 2: million-timer homogeneous drain, bank vs object ----------
    obj_wall, obj_now, obj_fired = _drain(vectorized=False)
    bank_wall, bank_now, bank_fired = _drain(vectorized=True)
    assert (obj_now, obj_fired) == (bank_now, bank_fired) == (3600.0, DRAIN_N)
    speedup = obj_wall / bank_wall
    if not SMOKE:
        assert speedup >= MIN_BANK_SPEEDUP, (
            f"bank drain only {speedup:.2f}x over object timers on "
            f"{DRAIN_N:,} homogeneous lanes (need >= {MIN_BANK_SPEEDUP}x)"
        )

    # -- leg 3: bank-on/bank-off parity on a shorter window ---------------
    pjobs = synthetic_facility_year(
        seed=1, n_nodes=N_NODES, horizon=PARITY_HORIZON
    )
    for pfaults in (None, FaultModel(checkpoint_interval=3600.0, seed=2)):
        r_obj = Scheduler(N_NODES).run(
            list(pjobs), faults=pfaults, timer_bank=False
        )
        r_bank = Scheduler(N_NODES).run(
            list(pjobs), faults=pfaults, timer_bank=True
        )
        assert r_obj == r_bank, "bank mode diverged from the object path"

    report(
        f"Facility year ({'smoke' if SMOKE else 'full'}, "
        f"{N_NODES:,} nodes, {HORIZON / 86400.0:.0f} days)",
        [
            ("jobs replayed", f"{len(jobs):,}", f"{gen_wall:.2f}s gen"),
            ("year wall-clock", f"{year_wall:.2f}s",
             f"{sim_per_wall:,.0f} sim-s/s"),
            ("utilization", f"{result.utilization:.3f}",
             f"{result.n_failures} failures"),
            ("goodput", f"{result.goodput_fraction:.4f}",
             f"{result.lost_node_hours:,.0f} lost node-h"),
            (f"drain n={DRAIN_N:,}", f"object {obj_wall:.3f}s",
             f"bank {bank_wall:.3f}s ({speedup:.1f}x)"),
        ],
        header=("metric", "value", "detail"),
    )
    record(
        "facility_year",
        {
            "n_nodes": N_NODES,
            "horizon_days": HORIZON / 86400.0,
            "n_jobs": len(jobs),
            "year_wall_seconds": year_wall,
            "sim_seconds_per_wall_second": sim_per_wall,
            "utilization": result.utilization,
            "goodput_fraction": result.goodput_fraction,
            "n_failures": result.n_failures,
            "drain_n_timers": DRAIN_N,
            "object_drain_seconds": obj_wall,
            "bank_drain_seconds": bank_wall,
            "bank_drain_speedup": speedup,
            "bank_events_per_sec": DRAIN_N / bank_wall,
            "max_year_wall_seconds": None if SMOKE else MAX_YEAR_WALL_SECONDS,
            "min_bank_speedup": None if SMOKE else MIN_BANK_SPEEDUP,
        },
        wall_seconds=gen_wall + year_wall + obj_wall + bank_wall,
    )
