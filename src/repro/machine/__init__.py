"""Hardware models for Summit and its companion OLCF systems.

This package provides the static hardware catalog the rest of the library
builds on: GPU and CPU specifications (:mod:`repro.machine.gpu`,
:mod:`repro.machine.cpu`), node compositions (:mod:`repro.machine.node`),
whole systems (:mod:`repro.machine.system`), the machine registry
(:mod:`repro.machine.spec` — ``summit``, ``frontier-like``,
``perlmutter-like``, ``tpu-pod-like``) and the concrete OLCF machines
described in Section II-A of the paper (:mod:`repro.machine.summit`).
"""

from repro.machine.cpu import (
    AMD_EPYC_7302,
    AMD_EPYC_7763,
    AMD_EPYC_7A53,
    GENERIC_X86_HOST,
    IBM_POWER9,
    INTEL_XEON_E5_2650V2,
    CpuSpec,
)
from repro.machine.gpu import (
    AMD_MI250X,
    NVIDIA_A100,
    NVIDIA_K80,
    NVIDIA_V100,
    TPU_V4_LIKE,
    GpuSpec,
    Precision,
)
from repro.machine.node import NodeSpec
from repro.machine.spec import (
    FRONTIER_LIKE,
    MACHINES,
    PERLMUTTER_LIKE,
    SUMMIT,
    TPU_POD_LIKE,
    MachineSpec,
    get_machine,
    machine_names,
    resolve_machine,
)
from repro.machine.summit import (
    GPFS_AGGREGATE_READ_BANDWIDTH,
    NVME_AGGREGATE_READ_BANDWIDTH,
    SUMMIT_ALGORITHMIC_BANDWIDTH,
    SUMMIT_INJECTION_BANDWIDTH,
    andes,
    rhea,
    summit,
    summit_high_mem_node,
    summit_node,
)
from repro.machine.system import System

__all__ = [
    "AMD_EPYC_7302",
    "AMD_EPYC_7763",
    "AMD_EPYC_7A53",
    "AMD_MI250X",
    "CpuSpec",
    "FRONTIER_LIKE",
    "GENERIC_X86_HOST",
    "GPFS_AGGREGATE_READ_BANDWIDTH",
    "GpuSpec",
    "IBM_POWER9",
    "INTEL_XEON_E5_2650V2",
    "MACHINES",
    "MachineSpec",
    "NVIDIA_A100",
    "NVIDIA_K80",
    "NVIDIA_V100",
    "NVME_AGGREGATE_READ_BANDWIDTH",
    "NodeSpec",
    "PERLMUTTER_LIKE",
    "Precision",
    "SUMMIT",
    "SUMMIT_ALGORITHMIC_BANDWIDTH",
    "SUMMIT_INJECTION_BANDWIDTH",
    "System",
    "TPU_POD_LIKE",
    "TPU_V4_LIKE",
    "andes",
    "get_machine",
    "machine_names",
    "resolve_machine",
    "rhea",
    "summit",
    "summit_high_mem_node",
    "summit_node",
]
