"""Differential testing for vectorized timer banks.

The :mod:`repro.sim.timerbank` contract is byte-identity: a seeded
workload runs observably the same with banks vectorized or in object
fallback, on either engine implementation — same event logs, same final
states, byte-identical Chrome traces. Hypothesis generates mixed programs
(bank populations with every survival style, generator processes sleeping
and cancelling banks mid-flight) and every observable is compared across
the full 2x2 (vectorized x impl) grid.

The facility-year demo is pinned by a seed-matrix golden: a small
scheduler replay per seed whose scalar results are committed JSON,
regenerated with ``REPRO_REGEN_GOLDENS=1`` after intentional changes.
"""

from __future__ import annotations

import json
import os
import pathlib

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from .hypothesis_settings import SLOW_SETTINGS, STANDARD_SETTINGS
from repro.scheduler import FaultModel, Job, Policy, Scheduler
from repro.scheduler.jobs import synthetic_facility_year
from repro.scheduler.policy import priority_key
from repro.sim import Engine, ExponentialRearm, Timeout, Timer, TimerBank
from repro.telemetry import Telemetry, chrome_trace_json

# Quantized initial delays: duplicates make same-instant expiry batches
# common (the vectorized mass-dispatch path); re-arm delays are continuous
# rng draws, so cross-block equal-deadline collisions stay measure-zero.
DELAYS = st.sampled_from([0.0, 0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.5])

#: (initial delays, survival style, fires-per-lane budget) per bank.
BANKS = st.lists(
    st.tuples(
        st.lists(DELAYS, min_size=1, max_size=5),
        st.sampled_from(["sleep", "legacy", "rearm"]),
        st.integers(0, 2),
    ),
    min_size=1,
    max_size=3,
)

ACTIONS = st.one_of(
    st.tuples(st.just("sleep"), DELAYS),
    st.tuples(st.just("cancel"), st.integers(0, 5)),
)

#: Generator processes running beside the banks.
PROGRAMS = st.lists(
    st.lists(ACTIONS, min_size=1, max_size=4), max_size=3
)


def run_mixed(programs, banks, impl, vectorized, with_telemetry=False):
    """Run one generated mixed workload; return every observable."""
    telemetry = Telemetry() if with_telemetry else None
    eng = Engine(telemetry, impl=impl)
    log: list[tuple] = []
    handles: list[TimerBank] = []

    for b, (delays, style, budget) in enumerate(banks):
        if style == "sleep":
            handles.append(TimerBank(
                eng, delays, name=f"b{b}", vectorized=vectorized,
            ))
            continue
        counts: dict[int, int] = {}

        if style == "legacy":
            def on_fire(lane, b=b, counts=counts, budget=budget):
                c = counts.get(lane, 0) + 1
                counts[lane] = c
                log.append(("fire", b, lane, eng.now))
                if c > budget:
                    return None  # lane dies
                return 0.5 + 0.25 * lane  # next delay, Timer-style

            handles.append(TimerBank(
                eng, delays, on_fire=on_fire, name=f"b{b}",
                vectorized=vectorized,
            ))
        else:  # rearm rule: exponential draws from a per-bank seeded rng
            def on_fire(lane, b=b, counts=counts, budget=budget):
                c = counts.get(lane, 0) + 1
                counts[lane] = c
                log.append(("fire", b, lane, eng.now))
                return c <= budget  # False retires the lane

            handles.append(TimerBank(
                eng, delays, on_fire=on_fire,
                rearm=ExponentialRearm(1.5, np.random.default_rng(100 + b)),
                name=f"b{b}", vectorized=vectorized,
            ))

    def body(i, actions):
        for act in actions:
            if act[0] == "sleep":
                yield Timeout(act[1])
                log.append(("slept", i, eng.now))
            else:
                target = act[1] % len(handles)
                n = handles[target].cancel(f"by-{i}")
                log.append(("cancelled", i, target, n, eng.now))
        return f"result-{i}"

    procs = [
        eng.spawn(body(i, actions), name=f"p{i}")
        for i, actions in enumerate(programs)
    ]
    eng.run()

    return {
        "log": log,
        "now": eng.now,
        "banks": [
            (h.n_fired, h.live_count, h.done) for h in handles
        ],
        "procs": [
            (p.name, p.finished, p.killed, p.result, p.finished_at)
            for p in procs
        ],
        "trace": chrome_trace_json(telemetry) if with_telemetry else None,
    }


GRID = [
    ("heap", False), ("heap", True), ("calendar", False), ("calendar", True),
]


@STANDARD_SETTINGS
@given(programs=PROGRAMS, banks=BANKS)
def test_bank_grid_equivalent(programs, banks):
    """Same logs, clocks and final states across vectorized x impl."""
    results = [
        run_mixed(programs, banks, impl, vectorized)
        for impl, vectorized in GRID
    ]
    for other in results[1:]:
        assert other == results[0]


@SLOW_SETTINGS
@given(programs=PROGRAMS, banks=BANKS)
def test_bank_traces_byte_identical(programs, banks):
    """Chrome traces are byte-identical across the whole grid."""
    results = [
        run_mixed(programs, banks, impl, vectorized, with_telemetry=True)
        for impl, vectorized in GRID
    ]
    for other in results[1:]:
        assert other["trace"] == results[0]["trace"]
        assert other == results[0]


@STANDARD_SETTINGS
@given(
    delays=st.lists(DELAYS, min_size=1, max_size=30),
    impl=st.sampled_from(["heap", "calendar"]),
)
def test_spawn_timers_bank_opt_in_equivalent(delays, impl):
    """``spawn_timers(timer_bank=True)`` matches the per-process spawn."""
    plain_eng = Engine(impl=impl)
    plain = plain_eng.spawn_timers(delays)
    plain_eng.run()

    bank_eng = Engine(impl=impl)
    bank = bank_eng.spawn_timers(delays, timer_bank=True)
    bank_eng.run()

    assert bank_eng.now == plain_eng.now
    assert bank.done
    assert bank.n_fired == len(delays)
    assert bank.live_count == 0
    assert all(p.finished and not p.killed for p in plain)


def test_spawn_timers_rejects_negative_delay_naming_index():
    eng = Engine()
    with pytest.raises(ValueError, match=r"-2\.0 at index 2"):
        eng.spawn_timers([1.0, 0.5, -2.0, 3.0])


def test_spawn_timers_rejects_nan_delay():
    eng = Engine()
    with pytest.raises(ValueError, match="index 1"):
        eng.spawn_timers([1.0, float("nan")])


def test_spawn_timers_rejects_non_1d():
    eng = Engine()
    with pytest.raises(ValueError, match="one-dimensional"):
        eng.spawn_timers([[1.0, 2.0]])


JOBS = st.lists(
    st.tuples(
        st.integers(1, 16),                       # nodes
        st.sampled_from([600.0, 1800.0, 3600.0]),  # duration
        st.sampled_from([0.0, 0.0, 300.0, 900.0, 3600.0]),  # submit
    ),
    min_size=1,
    max_size=20,
)


@SLOW_SETTINGS
@given(
    jobspec=JOBS,
    policy=st.sampled_from(list(Policy)),
    with_faults=st.booleans(),
)
def test_scheduler_bank_mode_equivalent(jobspec, policy, with_faults):
    """Bank-mode scheduling is byte-identical to the object path."""
    jobs = [
        Job(f"j{i}", nodes, duration, submit, uses_ai=bool(i % 2))
        for i, (nodes, duration, submit) in enumerate(jobspec)
    ]
    faults = (
        FaultModel(node_mtbf_seconds=2e5, checkpoint_interval=1800.0, seed=3)
        if with_faults else None
    )
    tel_obj, tel_bank = Telemetry(), Telemetry()
    r_obj = Scheduler(16, policy).run(
        list(jobs), faults=faults, telemetry=tel_obj, timer_bank=False
    )
    r_bank = Scheduler(16, policy).run(
        list(jobs), faults=faults, telemetry=tel_bank, timer_bank=True
    )
    assert r_obj == r_bank
    assert chrome_trace_json(tel_obj) == chrome_trace_json(tel_bank)


def test_scheduler_queue_key_lockstep():
    """The scheduler's inlined sort keys must equal priority_key exactly.

    ``Scheduler.run`` specialises the queue sort key per policy to skip
    per-event enum dispatch; this pins the float-for-float lockstep the
    inline comments promise.
    """
    rng = np.random.default_rng(5)
    jobs = [
        Job(f"k{i}", int(rng.integers(1, 4000)),
            float(rng.uniform(300, 86400)), float(rng.uniform(0, 1e6)))
        for i in range(200)
    ]
    for now in (0.0, 1234.56789, 1e6, 3.15e7):
        for policy in Policy:
            expected = [priority_key(policy, j, now) for j in jobs]
            if policy is Policy.CAPABILITY:
                inlined = [
                    (
                        -(j.nodes
                          + 4.0 * max(0.0, (now - j.submit_time) / 3600.0)),
                        j.submit_time,
                    )
                    for j in jobs
                ]
            elif policy is Policy.FIFO:
                inlined = [(j.submit_time,) for j in jobs]
            else:
                inlined = expected
            assert inlined == expected


@STANDARD_SETTINGS
@given(seed=st.integers(0, 30), n_nodes=st.sampled_from([16, 64, 256]))
def test_injector_bank_modes_equivalent(seed, n_nodes):
    """Per-node injector banks: object fallback == vectorized, any impl.

    ``impl="heap"`` resolves the bank to object fallback and
    ``impl="calendar"`` to vectorized, so comparing the two runs pins both
    the mode and the impl axis at once.
    """
    from repro.resilience.faults import FailureInjector, NodeFailureModel

    def one_run(impl):
        tel = Telemetry()
        eng = Engine(tel, impl=impl)

        def target_gen():
            from repro.sim import Interrupt

            hits = 0
            remaining = 40.0 * 86400.0
            while True:
                started = eng.now
                try:
                    yield Timeout(remaining)
                    return hits
                except Interrupt:
                    hits += 1
                    remaining -= eng.now - started

        target = eng.spawn(target_gen(), name="job")
        injector = FailureInjector(
            eng, NodeFailureModel(1.0e7), seed=seed
        )
        bank = injector.attach(target, n_nodes, timer_bank=True)
        eng.run()
        return {
            "events": [(e.time, e.node) for e in injector.events],
            "now": eng.now,
            "result": target.result,
            "fired": bank.n_fired,
            "trace": chrome_trace_json(tel),
        }

    heap_run = one_run("heap")
    calendar_run = one_run("calendar")
    assert heap_run == calendar_run
    # the test generator re-derives its remaining time by float
    # subtraction, so the final clock is only approximately the horizon
    assert heap_run["now"] == pytest.approx(40.0 * 86400.0)


# -- facility-year seed-matrix goldens ------------------------------------

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
SEEDS = (0, 1, 2)
#: Small config: a 64-node machine over 4 days keeps each replay ~10 ms.
GOLDEN_NODES, GOLDEN_HORIZON = 64, 4.0 * 86400.0


def _golden_path(seed: int) -> pathlib.Path:
    return GOLDEN_DIR / f"facility_year_seed{seed}.json"


def _facility_scalars(seed: int, timer_bank: bool) -> dict:
    jobs = synthetic_facility_year(
        seed=seed, n_nodes=GOLDEN_NODES, horizon=GOLDEN_HORIZON
    )
    faults = FaultModel(
        node_mtbf_seconds=5e6, checkpoint_interval=3600.0, seed=seed
    )
    r = Scheduler(GOLDEN_NODES).run(
        jobs, faults=faults, timer_bank=timer_bank
    )
    return {
        "seed": seed,
        "n_jobs": len(jobs),
        "makespan": r.makespan,
        "utilization": r.utilization,
        "mean_wait": r.mean_wait,
        "delivered_node_hours": r.delivered_node_hours,
        "ai_node_hours": r.ai_node_hours,
        "n_failures": r.n_failures,
        "n_requeues": r.n_requeues,
        "lost_node_hours": r.lost_node_hours,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_facility_year_golden(seed):
    """The facility-year demo workload is pinned per seed, bank mode."""
    path = _golden_path(seed)
    scalars = _facility_scalars(seed, timer_bank=True)
    regenerated = json.dumps(scalars, indent=2, sort_keys=True) + "\n"
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        path.write_text(regenerated)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path.name} missing - run with REPRO_REGEN_GOLDENS=1 to create it"
    )
    assert regenerated == path.read_text(), (
        f"{path.name} drifted: the facility-year replay no longer "
        f"reproduces the committed seed-{seed} scalars"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_facility_year_bank_off_matches_golden(seed):
    """The object path reproduces the same goldens — mode-independence."""
    assert _facility_scalars(seed, timer_bank=False) == json.loads(
        _golden_path(seed).read_text()
    )
