"""CI ratchet: fail when BENCH_engine.json drops below the committed floor.

Usage::

    python benchmarks/check_engine_floor.py [BENCH_engine.json] [engine_floor.json]

The floor file holds one block per tier (``smoke`` / ``full``); the tier
is picked from the benchmark record's own ``smoke`` flag, so the same
command works for the CI smoke run and a local full run. Every key in the
selected block must be present in the record's scalars and meet its
minimum. The floor only ever ratchets up: when the engine gets faster,
raise the numbers here — never lower them to paper over a regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(bench_path: str, floor_path: str) -> int:
    bench = json.loads(Path(bench_path).read_text())
    floors = json.loads(Path(floor_path).read_text())
    tier = "smoke" if bench.get("smoke") else "full"
    scalars = bench.get("scalars", {})
    failures = []
    for key, minimum in sorted(floors[tier].items()):
        measured = scalars.get(key)
        if not isinstance(measured, (int, float)) or measured < minimum:
            failures.append(
                f"{key}: measured {measured!r} < floor {minimum} [{tier}]"
            )
        else:
            print(f"OK {key}: {measured:,.2f} >= {minimum:,.2f} [{tier}]")
    if failures:
        print("engine benchmark ratchet FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"engine benchmark ratchet passed ({tier} floor)")
    return 0


if __name__ == "__main__":
    bench = sys.argv[1] if len(sys.argv) > 1 else "artifacts/BENCH_engine.json"
    floor = (
        sys.argv[2] if len(sys.argv) > 2
        else str(Path(__file__).with_name("engine_floor.json"))
    )
    sys.exit(check(bench, floor))
