"""Command-line interface: ``python -m repro.cli <command>``.

Commands mirror the paper's strands:

- ``machine``   — describe a machine-registry entry (``repro machine
  frontier-like``) or list the registry; ``--system`` still describes the
  OLCF Systems (Summit with its partitions, Rhea, Andes);
- ``comm``      — Section VI-B allreduce analysis for a catalog model;
- ``io``        — Section VI-B read-bandwidth feasibility;
- ``scaling``   — weak/strong scaling table for a catalog model;
- ``apps``      — simulate the five Section IV-B applications;
- ``survey``    — regenerate Figures 1-6 from the calibrated portfolio;
- ``gordon-bell`` — print Table III and the AI finalist list;
- ``resilience`` — goodput under node failures and checkpoint-restart for a
  Section IV-B application, with empirical Young/Daly validation;
- ``sweep``     — vectorized cost-model sweep: per-app step-time breakdown
  over a node-count grid, or the Section VI-B comm-vs-compute crossover
  surface (``--crossover``);
- ``telemetry`` — run an instrumented scenario (workflow DAG, batch
  scheduler, or checkpoint-restart job) and export a Perfetto-loadable
  Chrome trace plus a metrics summary; ``--shard-dir`` spills the records
  out-of-core to JSONL shards (exports stitched back byte-identically),
  ``--jsonl-out``/``--metrics-out`` add streaming JSONL and Prometheus
  exports;
- ``verify``    — run the paper-parity conformance battery: the full
  expectation registry (every paper-stated number), cross-path
  differential runners and structural invariant audits, with a
  deterministic JSON report for CI (same seed, byte-identical bytes);
- ``serve``     — run the crash-safe campaign server over a declarative
  campaign spec: bulk ingestion, time-bounded leases with heartbeats,
  write-ahead journal, backpressure, graceful drain;
- ``submit``    — bulk-ingest a campaign spec's jobs into a running server;
- ``campaign-status`` — query a running server (counts, attempts,
  requeues, metrics; ``--results`` dumps the completed result set);
- ``events``    — tail a running server's live event stream (journal
  records, telemetry instants, counter samples); ``--follow`` survives
  server restarts with exactly-once journal delivery;
- ``work``      — run a worker loop (acquire leases, heartbeat, compute,
  complete) against a running server.

``resilience``, ``sweep``, ``telemetry`` and ``verify`` accept ``--json``
for machine-readable output, and all four accept ``--jobs N`` to fan work
out over a process pool — results are bit-identical at every worker count.
The same four accept ``--machine NAME`` to run against a machine-registry
entry instead of Summit (``repro sweep --machine frontier-like``); omitting
the flag — or naming ``summit`` — keeps every output byte-identical to
earlier releases.
``sweep`` caches results content-addressed under ``.repro-cache/``
(``--no-cache`` disables); ``telemetry`` and ``resilience`` accept
``--replicas N`` for seeded Monte-Carlo ensembles.

Library errors exit with distinct nonzero codes (see ``EXIT_CODES``) and a
one-line ``error:`` message on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro import errors, units
from repro.core import ScalingStudyRunner, SummitSimulator, UsageSurvey
from repro.models.catalog import CATALOG
from repro.training.parallelism import DataSource, ParallelismPlan


def _cmd_machine(args: argparse.Namespace) -> int:
    if args.system is not None:
        from repro.machine.summit import andes, rhea, summit

        factory = {"summit": summit, "rhea": rhea, "andes": andes}[args.system]
        print(factory().describe())
        return 0
    from repro.machine.spec import get_machine, machine_names

    if args.name is not None:
        print(get_machine(args.name).describe())
        return 0
    print("machine registry (describe one with `repro machine NAME`):")
    for name in machine_names():
        spec = get_machine(name)
        gpu = (
            f"{spec.gpus_per_node} x {spec.gpus.name}"
            if spec.gpus is not None else "CPU-only"
        )
        print(f"  {name:<16} {spec.name:<16} [{spec.provenance:<9}] "
              f"{spec.node_count:>5} nodes, {gpu}")
    return 0


def _cmd_comm(args: argparse.Namespace) -> int:
    sim = SummitSimulator()
    estimate = sim.allreduce_estimate(args.model)
    detailed = sim.allreduce_detailed(args.model, args.nodes)
    print(f"model:            {args.model}")
    print(f"paper estimate:   {units.format_time(estimate)} "
          f"(message / 12.5 GB/s)")
    print(f"ring at {args.nodes} nodes: {units.format_time(detailed)} "
          f"(latency included)")
    return 0


def _cmd_io(args: argparse.Namespace) -> int:
    sim = SummitSimulator()
    print(sim.io_report(args.model, n_nodes=args.nodes)["summary"])
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    plan = ParallelismPlan(
        local_batch=args.batch,
        accumulation_steps=args.accumulation,
        model_shards=args.shards,
        overlap_fraction=args.overlap,
        compute_jitter_cv=args.jitter,
    )
    runner = ScalingStudyRunner(
        args.model, plan, data_source=DataSource(args.data_source)
    )
    nodes = [int(n) for n in args.nodes.split(",")]
    print(runner.table(nodes, strong=args.strong))
    return 0


def _cmd_apps(args: argparse.Namespace) -> int:
    from repro.apps.extreme_scale import EXTREME_SCALE_APPS

    print(f"{'app':<11}{'nodes':>7}{'PFLOP/s':>10}{'efficiency':>12}  reported")
    for key, app in EXTREME_SCALE_APPS.items():
        result = app.simulate()
        print(
            f"{key:<11}{app.peak_nodes:>7}"
            f"{result['measured_flops'] / 1e15:>10.1f}"
            f"{result['measured_efficiency']:>11.1%}  {result['reported']}"
        )
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    print(UsageSurvey.calibrated(seed=args.seed).report())
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    from repro.apps.extreme_scale import get_app

    engine_impl = _resolve_engine_impl(args)
    app = get_app(args.app)
    nodes = args.nodes if args.nodes is not None else app.peak_nodes
    mtbf_seconds = args.mtbf_years * 365 * 24 * 3600.0
    state_bytes = args.state_gb * 1e9
    report = app.resilience_report(
        n_nodes=nodes,
        node_mtbf_seconds=mtbf_seconds,
        state_bytes_per_node=state_bytes,
        tier=args.tier,
        empirical=not args.analytic_only,
        seed=args.seed,
        machine=args.machine,
        engine_impl=engine_impl,
    )
    ensemble = None
    if args.replicas > 1 and not args.analytic_only:
        ensemble = app.resilience_ensemble(
            n_nodes=nodes,
            node_mtbf_seconds=mtbf_seconds,
            state_bytes_per_node=state_bytes,
            tier=args.tier,
            n_replicas=args.replicas,
            seed=args.seed,
            n_jobs=args.jobs,
            machine=args.machine,
            engine_impl=engine_impl,
        )
    if args.json:
        import dataclasses
        import json

        payload = dataclasses.asdict(report)
        payload.update(_machine_field(args))
        payload["goodput_fraction"] = report.goodput_fraction
        payload["lost_node_hours"] = report.lost_node_hours
        payload["overhead_fraction"] = report.overhead_fraction
        if not args.analytic_only:
            payload["agreement"] = report.agreement()
            payload["matches_analytical"] = report.matches_analytical()
        if ensemble is not None:
            overheads = [s.overhead_fraction for s in ensemble]
            payload["ensemble"] = {
                "n_replicas": args.replicas,
                "overhead_fractions": overheads,
                "mean_overhead": sum(overheads) / len(overheads),
            }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(report.format())
    if not args.analytic_only:
        agreement = report.agreement()
        assert agreement is not None
        print(
            "empirical checkpoint+rework overhead "
            f"{'matches' if report.matches_analytical() else 'DEVIATES FROM'} "
            f"the Young/Daly optimum (rel. err {agreement:.1%}, tol 20%)"
        )
    if ensemble is not None:
        overheads = [s.overhead_fraction for s in ensemble]
        mean = sum(overheads) / len(overheads)
        spread = max(overheads) - min(overheads)
        print(
            f"ensemble of {args.replicas} seeded replicas: "
            f"mean overhead {mean:.4f} (spread {spread:.4f}, "
            f"analytic {report.analytical_overhead:.4f})"
        )
    return 0


def _parse_nodes(spec: str) -> list[int]:
    """Node-count grid: ``1,16,256`` (list) or ``4:4608:16`` (range w/ step)."""
    if ":" in spec:
        start, stop, step = (int(x) for x in spec.split(":"))
        return list(range(start, stop + 1, step))
    return [int(n) for n in spec.split(",")]


def _cmd_sweep(args: argparse.Namespace) -> int:
    import numpy as np

    nodes = _parse_nodes(args.nodes)
    cache = None
    if not args.no_cache:
        from repro.exec import ResultCache

        cache = ResultCache()

    if args.crossover:
        sim = SummitSimulator.for_machine(args.machine)
        sizes = np.array([float(s) * 1e6 for s in args.message_mb.split(",")])
        result = sim.crossover_surface(
            sizes, np.array(nodes), compute_time=args.compute_ms * 1e-3,
            n_jobs=args.jobs, cache=cache,
        )
        from repro.cost import crossover_nodes

        cross = crossover_nodes(result)
        paper = result.term("paper_estimate")[:, 0]
        ring = result.term("comm")
        if args.json:
            import json

            payload = {
                "mode": "crossover",
                "compute_ms": args.compute_ms,
                "nodes": nodes,
                **_machine_field(args),
                "rows": [
                    {
                        "message_bytes": float(size),
                        "paper_estimate_seconds": float(paper[i]),
                        "ring_at_max_nodes_seconds": float(ring[i, -1]),
                        "crossover_nodes": (
                            None if np.isnan(cross[i]) else int(cross[i])
                        ),
                    }
                    for i, size in enumerate(sizes)
                ],
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(
            f"Section VI-B crossover surface "
            f"(compute budget {args.compute_ms:g} ms/step)"
        )
        print(f"{'message':>10}  {'paper est.':>10}  {'ring@max':>10}  "
              f"{'comm>compute at':>15}")
        for i, size in enumerate(sizes):
            at = "never" if np.isnan(cross[i]) else f"{int(cross[i])} nodes"
            print(
                f"{units.format_bytes(size):>10}  "
                f"{units.format_time(paper[i]):>10}  "
                f"{units.format_time(ring[i, -1]):>10}  {at:>15}"
            )
        if cache is not None:
            print(_cache_note(cache))
        return 0

    from repro.apps.extreme_scale import get_app

    app = get_app(args.app)
    result = app.sweep_nodes(
        nodes, n_jobs=args.jobs, cache=cache, machine=args.machine
    )
    total = result.total()
    if args.json:
        import json

        payload = {
            "mode": "app",
            "app": app.key,
            "nodes": nodes,
            **_machine_field(args),
            "rows": [
                {
                    "nodes": n,
                    **{term: float(result.at(i)[term])
                       for term in result.breakdown},
                    "total_seconds": float(total[i]),
                }
                for i, n in enumerate(nodes)
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{app.key}: step-time sweep over {len(nodes)} node counts "
          f"(one vectorized pass)")
    print(f"{'nodes':>7}  {'compute':>9}  {'comm_exp':>9}  {'io_exp':>9}  "
          f"{'straggler':>9}  {'total':>9}  {'samples/s':>12}")
    for i, n in enumerate(nodes):
        bd = result.at(i)
        print(
            f"{n:>7}  {bd['compute'] * 1e3:>8.2f}m  "
            f"{bd['comm_exposed'] * 1e3:>8.2f}m  "
            f"{bd['io_exposed'] * 1e3:>8.2f}m  "
            f"{bd['straggler'] * 1e3:>8.2f}m  {total[i] * 1e3:>8.2f}m  "
            f"{bd['samples'] / total[i]:>12.0f}"
        )
    if cache is not None:
        print(_cache_note(cache))
    return 0


def _machine_field(args: argparse.Namespace) -> dict:
    """The ``machine`` entry for a JSON payload.

    Omitted entirely for the historical Summit default (flag absent *or*
    ``--machine summit``) so those outputs stay byte-identical to every
    earlier release.
    """
    if args.machine is None or args.machine == "summit":
        return {}
    return {"machine": args.machine}


def _cache_note(cache) -> str:
    state = "hit (reused)" if cache.hits else "miss (stored)"
    return f"result cache: {state} under {cache.root}"


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        ShardedJsonlSink,
        chrome_trace,
        load_shards,
        shard_paths,
        summary,
        write_chrome_trace,
        write_jsonl,
    )
    from repro.telemetry.scenarios import run_scenario, run_scenario_replicas

    engine_impl = _resolve_engine_impl(args)
    sink = None
    if args.shard_dir:
        from repro.telemetry import DEFAULT_SHARD_MAX_BYTES

        # Out-of-core mode: records spill to JSONL shards as they close;
        # the exports below are stitched back from the shards and are
        # byte-identical to the in-memory run (the streaming-identity
        # invariant in `repro verify` pins exactly this).
        sink = ShardedJsonlSink(
            args.shard_dir,
            shard_max_bytes=(
                args.shard_bytes if args.shard_bytes is not None
                else DEFAULT_SHARD_MAX_BYTES
            ),
        )
    elif args.shard_bytes is not None:
        raise errors.ConfigurationError("--shard-bytes requires --shard-dir")
    if args.replicas > 1:
        tel, replicas = run_scenario_replicas(
            args.scenario, args.replicas, seed=args.seed, n_jobs=args.jobs,
            machine=args.machine, sink=sink, engine_impl=engine_impl,
        )
        results = [r.results for r in replicas]
        report_lines = []
        for i, replica in enumerate(replicas):
            report_lines.append(f"replica {i}:")
            report_lines.extend(
                f"  {line}" for line in replica.report_lines if line
            )
        name = replicas[0].name
    else:
        scenario = run_scenario(
            args.scenario, seed=args.seed, machine=args.machine, sink=sink,
            engine_impl=engine_impl,
        )
        tel = scenario.telemetry
        results = scenario.results
        report_lines = scenario.report_lines
        name = scenario.name
    n_shards = 0
    if sink is not None:
        tel.close()
        n_shards = len(shard_paths(args.shard_dir))
        tel = load_shards(args.shard_dir)
    if args.out:
        write_chrome_trace(tel, args.out)
    if args.jsonl_out:
        write_jsonl(tel, args.jsonl_out)
    if args.metrics_out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(args.metrics_out, tel.metrics.render_prometheus())
    if args.json:
        import json

        trace = chrome_trace(tel)
        payload = {
            "scenario": name,
            "seed": args.seed,
            "n_replicas": args.replicas,
            **_machine_field(args),
            "out": args.out,
            "n_trace_events": len(trace["traceEvents"]),
            "n_spans": len(tel.finished_spans()),
            "n_instants": len(tel.instants),
            "results": results,
            "metrics": tel.metrics.as_dict(),
        }
        if args.shard_dir:
            payload["shard_dir"] = args.shard_dir
            payload["n_shards"] = n_shards
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"telemetry scenario {name!r} (seed {args.seed}"
        + (f", {args.replicas} replicas" if args.replicas > 1 else "")
        + ")"
    )
    print()
    for line in report_lines:
        print(f"  {line}")
    print()
    print(summary(tel))
    if args.shard_dir:
        print()
        print(f"telemetry spilled to {n_shards} shard(s) under "
              f"{args.shard_dir} (exports stitched from shards)")
    if args.out:
        print()
        print(f"Chrome trace written to {args.out} "
              "(load in Perfetto / chrome://tracing)")
    if args.jsonl_out:
        print(f"JSONL records written to {args.jsonl_out}")
    if args.metrics_out:
        print(f"Prometheus metrics written to {args.metrics_out}")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    """Tail (or catch up on) a running campaign server's event stream."""
    import json

    client = _service_client(args)

    def emit(frame) -> None:
        if args.json:
            print(json.dumps(frame.to_wire(), sort_keys=True,
                             separators=(",", ":")), flush=True)
        else:
            payload = frame.payload
            label = payload.get("type", payload.get("name", "?"))
            detail = payload.get("job_id") or payload.get("resource") or ""
            print(f"[{frame.topic} #{frame.seq}] {label}"
                  + (f" {detail}" if detail else ""), flush=True)

    if args.follow:
        n = 0
        for frame in client.follow(
            args.topic, since_seq=args.since_seq, give_up_s=args.give_up,
        ):
            emit(frame)
            n += 1
        if not args.json:
            print(f"stream ended after {n} frame(s): campaign drained")
        return 0
    frames = client.events(
        args.topic, since_seq=args.since_seq, max_frames=args.max_frames
    )
    for frame in frames:
        emit(frame)
    if not args.json:
        print(f"{len(frames)} frame(s) on {args.topic!r} after "
              f"seq {args.since_seq}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import build_registry, run_conformance

    if args.list:
        for e in build_registry():
            print(f"{e.key:<42} {e.paper:<18} {e.description}")
        return 0
    sections = args.sections.split(",") if args.sections else None
    report = run_conformance(
        seed=args.seed, sections=sections, n_jobs=args.jobs,
        machine=args.machine,
    )
    output = report.to_json() if args.json else report.format() + "\n"
    if args.out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(args.out, output)
        if not args.json:
            print(output, end="")
        print(f"report written to {args.out}")
    else:
        print(output, end="")
    return 0 if report.passed else 1


def _load_spec(args: argparse.Namespace):
    from repro.service import CampaignSpec, drug_campaign

    if args.spec:
        return CampaignSpec.from_file(args.spec)
    if args.drug:
        return drug_campaign(args.drug, seed=args.seed)
    raise errors.ConfigurationError(
        "provide --spec CAMPAIGN.json or --drug N"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    spec = _load_spec(args)
    print(f"serving campaign {spec.name!r}: {len(spec.jobs)} jobs, "
          f"lease {spec.lease_timeout_s:g}s, "
          f"journal {args.journal}, socket {args.socket}", flush=True)
    serve(
        spec, args.journal, args.socket,
        fsync=not args.no_fsync,
        sweep_interval_s=args.sweep_interval,
    )
    print("campaign server drained cleanly")
    return 0


def _service_client(args: argparse.Namespace):
    """CLI-facing client: retry patience is bounded by ``--timeout`` so a
    wrong socket path fails fast with a typed error, not a 30s stall."""
    from repro.resilience.retry import RetryPolicy
    from repro.service import ServiceClient

    policy = RetryPolicy(
        max_attempts=8, backoff_base=0.05, backoff_factor=2.0,
        backoff_max=1.0, jitter_fraction=0.0, deadline_s=args.timeout,
    )
    return ServiceClient(args.socket, timeout_s=args.timeout, policy=policy)


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    client = _service_client(args)
    response = client.submit_spec(spec)
    print(f"campaign {spec.name!r}: {response['ingested']} jobs ingested, "
          f"{response['known']} already known")
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json

    client = _service_client(args)
    status = client.status()
    if args.results:
        status["results"] = client.results()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    counts = status["counts"]
    print(f"campaign {status['campaign']!r} "
          f"({'recovered' if status['recovered'] else 'fresh'} journal)")
    print(f"  jobs: {status['n_jobs']}  pending {counts['pending']}  "
          f"leased {counts['leased']}  done {counts['done']}  "
          f"failed {counts['failed']}")
    print(f"  attempts {status['total_attempts']}  "
          f"requeues {status['total_requeues']}  "
          f"finished {status['finished']}")
    if status["failed_jobs"]:
        print(f"  failed: {', '.join(status['failed_jobs'])}")
    if args.results:
        for job_id, result in status["results"].items():
            print(f"  {job_id}: {json.dumps(result, sort_keys=True)}")
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    from repro.service.worker import run_worker

    completed = run_worker(
        args.socket, session=args.session, max_jobs=args.max_jobs,
        idle_exit_s=args.idle_exit_s,
    )
    print(f"worker {args.session or '(anon)'}: {completed} jobs completed")
    return 0


def _cmd_gordon_bell(args: argparse.Namespace) -> int:
    from repro.apps.registry import GORDON_BELL_FINALISTS, gordon_bell_table

    print("Table III — Summit Gordon Bell finalists (total / AI-ML)")
    for (year, category), (total, ai) in sorted(gordon_bell_table().items()):
        print(f"  {year} {category:<6} {total} / {ai}")
    if args.verbose:
        for f in GORDON_BELL_FINALISTS:
            if f.uses_ai:
                print(f"  {f.year} [{f.category}] {f.name}: {f.description}")
    return 0


_EPILOG = """\
parallel execution & caching:
  --jobs N       fan the work out over N worker processes (sweep, verify,
                 telemetry, resilience); results are bit-identical to the
                 serial run at every worker count
  --no-cache     (sweep) disable the content-addressed result cache; by
                 default sweeps are cached under .repro-cache/ (override
                 the location with $REPRO_CACHE_DIR), keyed by model,
                 grid, fixed parameters and a source-tree fingerprint
  --replicas N   (telemetry, resilience) run N seeded Monte-Carlo replicas
                 over SeedSequence child seeds; telemetry merges the
                 replica traces into one well-formed Chrome trace
  --machine NAME (sweep, verify, telemetry, resilience) run against a
                 machine-registry entry (summit, frontier-like,
                 perlmutter-like, tpu-pod-like); the default is Summit and
                 is byte-identical to omitting the flag
  --engine-impl IMPL
                 (telemetry, resilience) event-queue implementation for
                 the simulation engine (heap | calendar); unknown names
                 exit 3, and results are byte-identical across impls
"""


def _add_machine_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--machine", default=None, metavar="NAME",
                   help="registry machine to run against (list with "
                        "`repro machine`); default summit, byte-identical "
                        "to omitting the flag")


def _add_engine_impl_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine-impl", default=None, metavar="IMPL",
                   help="event-queue implementation for the simulation "
                        "engine (heap | calendar; default: the "
                        "REPRO_ENGINE_IMPL knob, else calendar); results "
                        "and traces are byte-identical across impls")


def _resolve_engine_impl(args: argparse.Namespace) -> str | None:
    """Validate ``--engine-impl`` up front (unknown names exit 3)."""
    from repro.sim.calqueue import resolve_engine_impl

    resolve_engine_impl(args.engine_impl)  # raises ConfigurationError
    return args.engine_impl


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Learning to Scale the Summit'",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "machine",
        help="describe a registry machine, or list the registry",
    )
    p.add_argument("name", nargs="?", default=None, metavar="NAME",
                   help="registry machine to describe, e.g. summit or "
                        "frontier-like (omit to list the registry)")
    p.add_argument("--system", choices=("summit", "rhea", "andes"),
                   default=None,
                   help="describe an OLCF System (all partitions) instead "
                        "of a registry spec")
    p.set_defaults(fn=_cmd_machine)

    p = sub.add_parser("comm", help="Section VI-B allreduce analysis")
    p.add_argument("--model", choices=sorted(CATALOG), default="bert_large")
    p.add_argument("--nodes", type=int, default=4608)
    p.set_defaults(fn=_cmd_comm)

    p = sub.add_parser("io", help="Section VI-B read-bandwidth feasibility")
    p.add_argument("--model", choices=sorted(CATALOG), default="resnet50")
    p.add_argument("--nodes", type=int, default=None)
    p.set_defaults(fn=_cmd_io)

    p = sub.add_parser("scaling", help="scaling study for a catalog model")
    p.add_argument("--model", choices=sorted(CATALOG), default="resnet50")
    p.add_argument("--nodes", default="1,16,256,4096",
                   help="comma-separated node counts")
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--accumulation", type=int, default=1)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--overlap", type=float, default=0.7)
    p.add_argument("--jitter", type=float, default=0.0)
    p.add_argument("--data-source", choices=[s.value for s in DataSource],
                   default="nvme")
    p.add_argument("--strong", action="store_true",
                   help="strong scaling (fixed global batch)")
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("apps", help="simulate the Section IV-B applications")
    p.set_defaults(fn=_cmd_apps)

    p = sub.add_parser("survey", help="regenerate the usage-survey figures")
    p.add_argument("--seed", type=int, default=2022)
    p.set_defaults(fn=_cmd_survey)

    p = sub.add_parser("gordon-bell", help="Table III and AI finalists")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_gordon_bell)

    from repro.apps.extreme_scale import EXTREME_SCALE_APPS

    p = sub.add_parser(
        "resilience",
        help="goodput under node failures + checkpoint-restart",
    )
    p.add_argument("--app", choices=sorted(EXTREME_SCALE_APPS),
                   default="laanait")
    p.add_argument("--nodes", type=int, default=None,
                   help="job width (default: the app's peak node count)")
    p.add_argument("--mtbf-years", type=float, default=5.0,
                   help="per-node MTBF in years")
    p.add_argument("--state-gb", type=float, default=30.0,
                   help="checkpoint payload per node in GB")
    p.add_argument("--tier", choices=("nvme", "shared_fs"), default="nvme")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--analytic-only", action="store_true",
                   help="skip the event-driven empirical simulation")
    p.add_argument("--replicas", type=int, default=1,
                   help="Monte-Carlo ensemble size over child seeds "
                        "(default 1: the single seeded run)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the replica ensemble "
                        "(0 = all cores)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    _add_machine_arg(p)
    _add_engine_impl_arg(p)
    p.set_defaults(fn=_cmd_resilience)

    p = sub.add_parser(
        "sweep",
        help="vectorized cost-model sweep (per-app or --crossover)",
    )
    p.add_argument("--app", choices=sorted(EXTREME_SCALE_APPS),
                   default="kurth",
                   help="Section IV-B application to sweep")
    p.add_argument("--nodes", default="1,16,64,256,1024,4096",
                   help="node grid: comma list or start:stop:step range")
    p.add_argument("--crossover", action="store_true",
                   help="map the Section VI-B comm-vs-compute crossover "
                        "surface instead of an app sweep")
    p.add_argument("--message-mb", default="102.4,1400",
                   help="gradient message sizes in MB (crossover mode; "
                        "default ResNet-50 and BERT-large)")
    p.add_argument("--compute-ms", type=float, default=50.0,
                   help="per-step compute budget in ms (crossover mode)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the grid evaluation "
                        "(0 = all cores); bit-identical to serial")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the content-addressed result cache "
                        "(.repro-cache/ or $REPRO_CACHE_DIR)")
    p.add_argument("--json", action="store_true",
                   help="emit the sweep table as JSON")
    _add_machine_arg(p)
    p.set_defaults(fn=_cmd_sweep)

    from repro.telemetry.scenarios import SCENARIOS

    p = sub.add_parser(
        "telemetry",
        help="run an instrumented scenario and export a Chrome trace",
    )
    p.add_argument("--scenario", choices=sorted(SCENARIOS), default="dag",
                   help="which canned simulation to instrument")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None, metavar="TRACE_JSON",
                   help="write the Chrome trace-event file here "
                        "(load in Perfetto / chrome://tracing)")
    p.add_argument("--jsonl-out", default=None, metavar="RECORDS_JSONL",
                   help="also stream the JSONL record export here "
                        "(bounded memory, byte-identical to to_jsonl)")
    p.add_argument("--metrics-out", default=None, metavar="PROM_TXT",
                   help="also write the metrics registry in Prometheus "
                        "text exposition format")
    p.add_argument("--shard-dir", default=None, metavar="DIR",
                   help="spill telemetry out-of-core to JSONL shards in "
                        "DIR as records close; exports are stitched back "
                        "from the shards, byte-identical to in-memory")
    p.add_argument("--shard-bytes", type=int, default=None, metavar="N",
                   help="shard rotation threshold in bytes "
                        "(default 4 MiB; requires --shard-dir)")
    p.add_argument("--replicas", type=int, default=1,
                   help="run N seeded replicas and merge their traces "
                        "into one (default 1)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the replicas (0 = all cores)")
    p.add_argument("--json", action="store_true",
                   help="emit scenario results + metrics as JSON")
    _add_machine_arg(p)
    _add_engine_impl_arg(p)
    p.set_defaults(fn=_cmd_telemetry)

    def add_spec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", default=None, metavar="CAMPAIGN.json",
                       help="declarative campaign spec file")
        p.add_argument("--drug", type=int, default=0, metavar="N",
                       help="instead of --spec: a Section V drug-discovery "
                            "campaign of N docking jobs")
        p.add_argument("--seed", type=int, default=2022,
                       help="seed for --drug campaign generation")

    p = sub.add_parser(
        "serve",
        help="run the crash-safe campaign server (WAL + leases)",
    )
    add_spec_args(p)
    p.add_argument("--journal", required=True, metavar="DIR",
                   help="write-ahead journal directory; restart with the "
                        "same directory to resume after a crash")
    p.add_argument("--socket", required=True, metavar="PATH",
                   help="unix socket to listen on")
    p.add_argument("--sweep-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="lease-expiry sweep period (default: half the "
                        "spec's heartbeat interval)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip journal fsyncs (faster, NOT crash-safe; "
                        "tests only)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="bulk-ingest a campaign spec into a running server",
    )
    add_spec_args(p)
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-request timeout in seconds")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "campaign-status",
        help="query a running campaign server",
    )
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--timeout", type=float, default=10.0)
    p.add_argument("--results", action="store_true",
                   help="also fetch the completed result set")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_campaign_status)

    p = sub.add_parser(
        "events",
        help="tail a running campaign server's live event stream",
    )
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--topic", default="journal",
                   choices=("journal", "spans", "events", "counters"),
                   help="journal (durable, exactly-once across restarts) "
                        "or a live telemetry topic (ring-buffered)")
    p.add_argument("--since-seq", type=int, default=0, metavar="SEQ",
                   help="start after this sequence number (0 = everything)")
    p.add_argument("--follow", action="store_true",
                   help="stay subscribed until the campaign drains, "
                        "reconnecting across server restarts")
    p.add_argument("--max-frames", type=int, default=1000,
                   help="catch-up frame cap (ignored with --follow)")
    p.add_argument("--give-up", type=float, default=30.0, metavar="SECONDS",
                   help="with --follow: abandon after this long of "
                        "continuous server unreachability")
    p.add_argument("--timeout", type=float, default=10.0,
                   help="per-request / frame-silence timeout in seconds")
    p.add_argument("--json", action="store_true",
                   help="emit one wire frame per line (machine-readable)")
    p.set_defaults(fn=_cmd_events)

    p = sub.add_parser(
        "work",
        help="run a worker loop against a running campaign server",
    )
    p.add_argument("--socket", required=True, metavar="PATH")
    p.add_argument("--session", default=None,
                   help="session id (default: random)")
    p.add_argument("--max-jobs", type=int, default=1,
                   help="leases to acquire per round-trip")
    p.add_argument("--idle-exit-s", type=float, default=None,
                   help="exit after this long with no work (default: "
                        "wait for the campaign to finish)")
    p.set_defaults(fn=_cmd_work)

    p = sub.add_parser(
        "verify",
        help="run the paper-parity conformance battery (exit 1 on failure)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sections", default=None,
                   help="comma-separated registry sections to check "
                        "(e.g. fig1,section4b; default: all)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes — one task per paper section "
                        "plus the differential/invariant batteries; the "
                        "report is byte-identical at every worker count")
    p.add_argument("--json", action="store_true",
                   help="emit the full conformance report as JSON "
                        "(byte-identical for identical seeds)")
    p.add_argument("--out", default=None, metavar="REPORT",
                   help="also write the report to this file")
    p.add_argument("--list", action="store_true",
                   help="list every registered expectation and exit")
    _add_machine_arg(p)
    p.set_defaults(fn=_cmd_verify)

    return parser


#: Library errors exit with a distinct, stable code per class — scripts and
#: the chaos harness branch on them instead of parsing tracebacks. Lookup
#: walks the MRO, so a subclass without its own entry inherits its parent's.
EXIT_CODES: dict[type, int] = {
    errors.ConfigurationError: 3,
    errors.CapacityError: 4,
    errors.SimulationError: 5,
    errors.ConvergenceError: 6,
    errors.TaxonomyError: 7,
    errors.ServiceError: 8,
    errors.Saturated: 9,
    errors.LeaseExpired: 10,
    errors.JournalCorrupt: 11,
    errors.ProtocolError: 12,
    errors.ReproError: 64,
}


def exit_code_for(exc: errors.ReproError) -> int:
    """Most-derived EXIT_CODES entry for ``exc``'s class."""
    for cls in type(exc).__mro__:
        if cls in EXIT_CODES:
            return EXIT_CODES[cls]
    return 64  # pragma: no cover - ReproError is always in the MRO


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except errors.ReproError as exc:
        print(f"error: [{type(exc).__name__}] {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":
    sys.exit(main())
