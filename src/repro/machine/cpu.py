"""CPU specifications for the OLCF systems surveyed in Section II-A."""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU socket.

    ``usable_cores`` may be smaller than ``cores`` when the facility reserves
    cores for system services: one core of each Summit POWER9 is held back,
    leaving 42 of 44 cores per node for user processes.
    """

    name: str
    cores: int
    usable_cores: int
    clock_hz: float
    flops_per_cycle: float = 8.0  # per core, double precision

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be positive")
        if not 0 < self.usable_cores <= self.cores:
            raise ConfigurationError(
                f"{self.name}: usable_cores must be in (0, {self.cores}]"
            )
        if self.clock_hz <= 0:
            raise ConfigurationError(f"{self.name}: clock must be positive")

    @property
    def peak_flops(self) -> float:
        """Peak double-precision FLOP/s of the full socket."""
        return self.cores * self.clock_hz * self.flops_per_cycle


#: Summit host processor: 22 cores, one reserved for the system.
IBM_POWER9 = CpuSpec(
    name="IBM POWER9",
    cores=22,
    usable_cores=21,
    clock_hz=3.07 * units.GIGA,
)

#: Rhea CPU-partition processor.
INTEL_XEON_E5_2650V2 = CpuSpec(
    name="Intel Xeon E5-2650 v2",
    cores=8,
    usable_cores=8,
    clock_hz=2.6 * units.GIGA,
)

#: Andes processor.
AMD_EPYC_7302 = CpuSpec(
    name="AMD EPYC 7302",
    cores=16,
    usable_cores=16,
    clock_hz=3.0 * units.GIGA,
)

# -- non-OLCF hosts for the MachineSpec registry (provenance "estimated") -----

#: Frontier's host processor ("Trento"), 8 cores reserved for the system.
AMD_EPYC_7A53 = CpuSpec(
    name="AMD EPYC 7A53",
    cores=64,
    usable_cores=56,
    clock_hz=2.0 * units.GIGA,
)

#: Perlmutter GPU-node host processor ("Milan").
AMD_EPYC_7763 = CpuSpec(
    name="AMD EPYC 7763",
    cores=64,
    usable_cores=64,
    clock_hz=2.45 * units.GIGA,
)

#: Anonymous x86 host for the abstract ``tpu-pod-like`` machine.
GENERIC_X86_HOST = CpuSpec(
    name="Generic x86 host",
    cores=48,
    usable_cores=48,
    clock_hz=2.2 * units.GIGA,
)
