"""Section V-A: the materials workflow (Liu et al.).

Pipeline: expensive first-principles energies (our exact lattice
Hamiltonian, with every evaluation counted) -> BIC-selected cluster
expansion -> Monte Carlo over temperature with the surrogate in the loop ->
order-disorder transition temperature.

Quantitative target: the surrogate-driven sweep must locate the transition
near the exact Onsager value T_c ~ 2.269 J/k_B while calling the expensive
model orders of magnitude less often than a fully first-principles sweep
would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.science.cluster_expansion import ClusterExpansion
from repro.science.ising import (
    AlloyLattice,
    MCResult,
    MonteCarlo,
    estimate_critical_temperature,
    exact_critical_temperature,
)


@dataclass
class MaterialsResult:
    """Outcome of the materials workflow."""

    tc_estimate: float
    tc_exact: float
    expensive_calls: int
    mc_energy_evaluations: int
    ce_terms: tuple[int, ...]
    ce_rmse: float
    sweep: list[MCResult]

    @property
    def tc_relative_error(self) -> float:
        return abs(self.tc_estimate - self.tc_exact) / self.tc_exact

    @property
    def call_reduction(self) -> float:
        """How many expensive evaluations the surrogate displaced."""
        if self.expensive_calls == 0:
            return float("inf")
        return self.mc_energy_evaluations / self.expensive_calls


class MaterialsWorkflow:
    """ML-accelerated statistical mechanics of a binary alloy."""

    def __init__(self, lattice_size: int = 16, seed: int | None = 0):
        if lattice_size < 4:
            raise ConfigurationError("lattice_size must be >= 4")
        self.lattice_size = lattice_size
        self.seed = seed
        self.expensive_calls = 0

    # -- the "first principles" oracle ----------------------------------------------

    def expensive_energy(self, lattice: AlloyLattice) -> float:
        """The exact Hamiltonian, standing in for an LSMS/DFT evaluation.
        Every call is counted — this is the budget the workflow economises."""
        self.expensive_calls += 1
        return lattice.energy()

    # -- training-set generation -------------------------------------------------------

    def generate_training_data(
        self, n_configs: int = 48, temperatures: tuple[float, float] = (0.8, 5.0)
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decorrelated configurations across the temperature range, labelled
        by the expensive model."""
        if n_configs < 4:
            raise ConfigurationError("need at least 4 training configurations")
        rng = np.random.default_rng(self.seed)
        feats = np.empty((n_configs, 4))
        energies = np.empty(n_configs)
        for i in range(n_configs):
            lat = AlloyLattice(
                self.lattice_size, seed=None if self.seed is None else self.seed + i
            )
            mc = MonteCarlo(lat, seed=None if self.seed is None else self.seed + i)
            t = rng.uniform(*temperatures)
            mc.run(t, n_sweeps=2, n_warmup=30)
            feats[i] = lat.correlations()
            energies[i] = self.expensive_energy(lat) / lat.spins.size
        return feats, energies

    # -- the full workflow ----------------------------------------------------------------

    def run(
        self,
        n_training: int = 48,
        temperatures: np.ndarray | None = None,
        n_sweeps: int = 150,
        n_warmup: int = 100,
    ) -> MaterialsResult:
        """Train the cluster expansion and run the surrogate-in-the-loop
        temperature sweep."""
        feats, energies = self.generate_training_data(n_training)
        ce = ClusterExpansion.fit(feats, energies)

        if temperatures is None:
            temperatures = np.linspace(3.4, 1.2, 12)
        temps = list(np.asarray(temperatures, dtype=float))
        if not temps:
            raise ConfigurationError("temperature grid must be non-empty")

        lat = AlloyLattice(self.lattice_size, seed=self.seed)
        mc = MonteCarlo(lat, seed=self.seed)
        sweep = mc.temperature_sweep(
            temps, n_sweeps=n_sweeps, n_warmup=n_warmup, energy_model=ce
        )
        mc_energy_evaluations = len(temps) * n_sweeps

        return MaterialsResult(
            tc_estimate=estimate_critical_temperature(sweep),
            tc_exact=exact_critical_temperature(lat.j),
            expensive_calls=self.expensive_calls,
            mc_energy_evaluations=mc_energy_evaluations,
            ce_terms=ce.terms,
            ce_rmse=ce.training_rmse,
            sweep=sweep,
        )

    def run_first_principles_baseline(
        self,
        temperatures: np.ndarray | None = None,
        n_sweeps: int = 150,
        n_warmup: int = 100,
    ) -> MaterialsResult:
        """The paper's pre-ML approach: every measurement calls the
        expensive model directly."""
        if temperatures is None:
            temperatures = np.linspace(3.4, 1.2, 12)
        temps = list(np.asarray(temperatures, dtype=float))
        lat = AlloyLattice(self.lattice_size, seed=self.seed)
        mc = MonteCarlo(lat, seed=self.seed)
        sweep = mc.temperature_sweep(
            temps, n_sweeps=n_sweeps, n_warmup=n_warmup,
            energy_model=self.expensive_energy,
        )
        return MaterialsResult(
            tc_estimate=estimate_critical_temperature(sweep),
            tc_exact=exact_critical_temperature(lat.j),
            expensive_calls=self.expensive_calls,
            mc_energy_evaluations=len(temps) * n_sweeps,
            ce_terms=(),
            ce_rmse=0.0,
            sweep=sweep,
        )
