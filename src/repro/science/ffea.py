"""Coarse mass-spring continuum model — the FFEA stand-in.

Trifan et al. (Section V-B) couple a mesoscale fluctuating finite-element
simulation to all-atom MD. The mesoscale role — cheap dynamics of a coarse
elastic body whose conformations feed an autoencoder — is played here by a
damped mass-spring network with thermal noise: nodes on a grid, springs to
neighbours, overdamped Langevin dynamics. Two orders of magnitude cheaper
per frame than the MD engine, exactly the cost separation the workflow
exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class MassSpringModel:
    """An n_side x n_side grid of unit masses joined by harmonic springs.

    Overdamped Langevin dynamics:
        x' = -grad U / gamma + sqrt(2 T / gamma) xi(t)
    """

    def __init__(
        self,
        n_side: int = 6,
        stiffness: float = 20.0,
        rest_length: float = 1.0,
        gamma: float = 1.0,
        seed: int | None = None,
    ):
        if n_side < 2:
            raise ConfigurationError("n_side must be >= 2")
        if stiffness <= 0 or rest_length <= 0 or gamma <= 0:
            raise ConfigurationError("physical parameters must be positive")
        self.n_side = n_side
        self.stiffness = stiffness
        self.rest_length = rest_length
        self.gamma = gamma
        ii, jj = np.meshgrid(np.arange(n_side), np.arange(n_side), indexing="ij")
        self.positions = rest_length * np.column_stack(
            [ii.ravel(), jj.ravel()]
        ).astype(float)
        self._springs = self._build_springs()
        self.rng = np.random.default_rng(seed)

    def _build_springs(self) -> np.ndarray:
        """(n_springs, 2) node-index pairs: horizontal + vertical neighbours."""
        n = self.n_side
        idx = np.arange(n * n).reshape(n, n)
        pairs = []
        pairs.append(np.column_stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()]))
        pairs.append(np.column_stack([idx[:-1, :].ravel(), idx[1:, :].ravel()]))
        return np.vstack(pairs)

    @property
    def n_nodes(self) -> int:
        return self.n_side**2

    def forces(self) -> np.ndarray:
        """Spring forces on every node (vectorised over springs)."""
        a, b = self._springs[:, 0], self._springs[:, 1]
        dr = self.positions[b] - self.positions[a]
        length = np.linalg.norm(dr, axis=1, keepdims=True)
        length = np.where(length > 1e-12, length, 1e-12)
        f = self.stiffness * (length - self.rest_length) * dr / length
        out = np.zeros_like(self.positions)
        np.add.at(out, a, f)
        np.add.at(out, b, -f)
        return out

    def energy(self) -> float:
        a, b = self._springs[:, 0], self._springs[:, 1]
        length = np.linalg.norm(self.positions[b] - self.positions[a], axis=1)
        return 0.5 * self.stiffness * float(((length - self.rest_length) ** 2).sum())

    def step(self, dt: float = 0.005, temperature: float = 0.1) -> None:
        """One overdamped Langevin step."""
        if dt <= 0 or temperature < 0:
            raise ConfigurationError("dt must be positive, temperature >= 0")
        drift = self.forces() / self.gamma
        noise = np.sqrt(2.0 * temperature * dt / self.gamma) * self.rng.standard_normal(
            self.positions.shape
        )
        self.positions += dt * drift + noise

    def descriptor(self) -> np.ndarray:
        """Permutation-stable conformation feature: spring lengths in
        construction order (the analogue of the MD engine's sorted pair
        distances, but cheaper)."""
        a, b = self._springs[:, 0], self._springs[:, 1]
        return np.linalg.norm(self.positions[b] - self.positions[a], axis=1)

    def sample_trajectory(
        self,
        n_frames: int,
        steps_per_frame: int = 20,
        dt: float = 0.005,
        temperature: float = 0.1,
    ) -> np.ndarray:
        """(n_frames, n_springs) descriptor trajectory."""
        if n_frames < 1 or steps_per_frame < 1:
            raise ConfigurationError("frame counts must be >= 1")
        frames = np.empty((n_frames, self._springs.shape[0]))
        for i in range(n_frames):
            for _ in range(steps_per_frame):
                self.step(dt=dt, temperature=temperature)
            frames[i] = self.descriptor()
        return frames

    def apply_deformation(self, magnitude: float = 0.5) -> None:
        """Pull one corner — creates the rare-conformation events the
        coupling workflow must detect."""
        self.positions[-1] += magnitude
