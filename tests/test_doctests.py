"""Run the library's doctests — the examples embedded in docstrings are part
of the documented API contract."""

import doctest
import importlib

import pytest

MODULES = [
    "repro.units",
    "repro.core.api",
    "repro.cost.kernels",
    "repro.cost.breakdown",
    "repro.cost.sweep",
    "repro.exec.parallel",
    "repro.exec.cache",
    "repro.ml.mlp",
    "repro.ml.surrogate",
    "repro.optim.sgd",
    "repro.optim.schedule",
    "repro.machine.summit",
    "repro.portfolio.taxonomy",
    "repro.science.md",
    "repro.sim.engine",
    "repro.telemetry",
    "repro.telemetry.stream",
    "repro.training.job",
    "repro.training.scaling",
    "repro.analysis.scaling_laws",
    "repro.atomicio",
    "repro.resilience.retry",
    "repro.service.spec",
    "repro.service.journal",
    "repro.service.pubsub",
    "repro.service.chaos",
    "repro.verify.expectations",
    "repro.verify.differential",
    "repro.verify.invariants",
    "repro.verify.report",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
