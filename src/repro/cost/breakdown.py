"""CostBreakdown: the structured result every cost model returns.

A breakdown is an ordered mapping of named terms (floats on the scalar path,
NumPy arrays on the vectorized path) plus per-term *provenance* — a short
statement of the formula and its source in the paper — and a ``critical``
tuple naming the terms that sum to the critical-path ``total``.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError


def _is_array(v: Any) -> bool:
    return isinstance(v, np.ndarray)


@dataclass(frozen=True)
class CostBreakdown(Mapping):
    """Named cost terms with provenance, scalar or vectorized.

    ``critical`` lists the terms whose (left-to-right) sum is the
    critical-path total; terms outside it are informational (e.g. the
    pre-overlap ``comm`` next to the exposed ``comm_exposed``).

    >>> bd = CostBreakdown(model="demo",
    ...                    terms={"compute": 2.0, "comm": 1.0, "raw": 9.0},
    ...                    critical=("compute", "comm"))
    >>> bd.total
    3.0
    >>> round(bd.fraction("comm"), 4)
    0.3333
    >>> bd["raw"], bd.is_scalar, bd.shape
    (9.0, True, ())
    """

    model: str
    terms: dict[str, Any]
    provenance: dict[str, str] = field(default_factory=dict)
    critical: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.terms:
            raise ConfigurationError(f"{self.model}: breakdown has no terms")
        for name in self.critical:
            if name not in self.terms:
                raise ConfigurationError(
                    f"{self.model}: critical term {name!r} not among "
                    f"{sorted(self.terms)}"
                )

    # -- mapping protocol ---------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        return self.terms[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self.terms)

    def __len__(self) -> int:
        return len(self.terms)

    # -- aggregates ---------------------------------------------------------------

    @property
    def total(self) -> Any:
        """Critical-path sum, accumulated in declaration order so the scalar
        path reproduces handwritten ``a + b + c`` expressions bitwise."""
        names = self.critical or tuple(self.terms)
        acc = self.terms[names[0]]
        for name in names[1:]:
            acc = acc + self.terms[name]
        return acc

    def fraction(self, name: str) -> Any:
        """Share of the critical-path total contributed by ``name``."""
        term, total = self.terms[name], self.total
        if _is_array(term) or _is_array(total):
            total = np.asarray(total)
            safe = np.where(total != 0, total, 1.0)
            return np.where(total != 0, np.asarray(term) / safe, 0.0)
        return term / total if total else 0.0

    # -- shape handling -----------------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return not any(_is_array(v) for v in self.terms.values())

    @property
    def shape(self) -> tuple[int, ...]:
        """Broadcast shape of the terms (``()`` for the scalar path)."""
        return np.broadcast_shapes(*(np.shape(v) for v in self.terms.values()))

    def at(self, *index: int) -> "CostBreakdown":
        """Scalar breakdown at one grid point of a vectorized evaluation."""
        shape = self.shape
        if len(index) != len(shape):
            raise ConfigurationError(
                f"{self.model}: index {index} does not match shape {shape}"
            )
        picked = {}
        for name, value in self.terms.items():
            full = np.broadcast_to(np.asarray(value), shape)
            picked[name] = full[index].item()
        return CostBreakdown(
            model=self.model,
            terms=picked,
            provenance=self.provenance,
            critical=self.critical,
        )

    # -- presentation -------------------------------------------------------------

    def summary(self, formatter=None) -> str:
        """Human-readable term listing; arrays are summarised by shape."""
        fmt = formatter or (lambda v: f"{v:.6g}")
        lines = [f"{self.model} cost breakdown:"]
        for name, value in self.terms.items():
            if _is_array(value):
                rendered = f"array{np.shape(value)}"
            else:
                rendered = fmt(value)
            note = self.provenance.get(name, "")
            star = "*" if name in self.critical else " "
            lines.append(f" {star} {name:<16} {rendered:>14}  {note}")
        if self.is_scalar:
            lines.append(f"   {'total':<16} {fmt(self.total):>14}  (critical path)")
        return "\n".join(lines)
