"""Text-table rendering of the survey figures — what the benchmarks print."""

from __future__ import annotations

from repro.portfolio.analytics import PortfolioAnalytics
from repro.portfolio.taxonomy import AdoptionStatus, Domain, MLMethod, Motif


def render_fig1(analytics: PortfolioAnalytics) -> str:
    usage = analytics.overall_usage()
    lines = ["Fig. 1 — Overall AI/ML usage (% of projects)"]
    for status in AdoptionStatus:
        lines.append(f"  {status.value:<10} {usage[status] * 100:5.1f}%")
    return "\n".join(lines)


def render_fig2(analytics: PortfolioAnalytics) -> str:
    table = analytics.usage_by_program_year()
    lines = [
        "Fig. 2 — AI/ML usage by program and year (% of projects)",
        f"  {'program':<10} {'year':>5} {'active':>8} {'inactive':>9} {'none':>7}",
    ]
    for (program, year), fractions in table.items():
        lines.append(
            f"  {program.value:<10} {year:>5} "
            f"{fractions[AdoptionStatus.ACTIVE] * 100:>7.1f}% "
            f"{fractions[AdoptionStatus.INACTIVE] * 100:>8.1f}% "
            f"{fractions[AdoptionStatus.NONE] * 100:>6.1f}%"
        )
    return "\n".join(lines)


def render_fig3(analytics: PortfolioAnalytics) -> str:
    usage = analytics.usage_by_method()
    lines = ["Fig. 3 — Usage by AI/ML method (% of AI projects)"]
    for method in MLMethod:
        lines.append(f"  {method.value:<14} {usage[method] * 100:5.1f}%")
    return "\n".join(lines)


def render_fig4(analytics: PortfolioAnalytics) -> str:
    table = analytics.usage_by_domain()
    lines = [
        "Fig. 4 — AI/ML usage by science domain (project counts)",
        f"  {'domain':<18} {'active':>7} {'inactive':>9} {'none':>6} {'total':>6}",
    ]
    for domain in Domain:
        row = table[domain]
        total = sum(row.values())
        lines.append(
            f"  {domain.value:<18} {row[AdoptionStatus.ACTIVE]:>7} "
            f"{row[AdoptionStatus.INACTIVE]:>9} {row[AdoptionStatus.NONE]:>6} "
            f"{total:>6}"
        )
    return "\n".join(lines)


def render_fig5(analytics: PortfolioAnalytics) -> str:
    counts = analytics.usage_by_motif()
    total = sum(counts.values())
    lines = ["Fig. 5 — AI/ML usage by motif (INCITE+ALCC+ECP AI projects)"]
    for motif in sorted(Motif, key=lambda m: counts[m], reverse=True):
        lines.append(
            f"  {motif.value:<18} {counts[motif]:>4}  "
            f"{counts[motif] / total * 100:5.1f}%"
        )
    return "\n".join(lines)


def render_fig6(analytics: PortfolioAnalytics) -> str:
    matrix = analytics.motif_by_domain()
    abbrev = {
        Domain.BIOLOGY: "BIO", Domain.CHEMISTRY: "CHE",
        Domain.COMPUTER_SCIENCE: "CS", Domain.EARTH_SCIENCE: "EAR",
        Domain.ENGINEERING: "ENG", Domain.FUSION_PLASMA: "FUS",
        Domain.MATERIALS: "MAT", Domain.NUCLEAR_ENERGY: "NUC",
        Domain.PHYSICS: "PHY",
    }
    header = "  " + f"{'motif':<18}" + "".join(f"{abbrev[d]:>5}" for d in Domain)
    lines = ["Fig. 6 — AI motif vs science domain (project counts)", header]
    for motif in Motif:
        row = matrix[motif]
        lines.append(
            "  " + f"{motif.value:<18}"
            + "".join(f"{row[d]:>5}" for d in Domain)
        )
    return "\n".join(lines)


def render_all(analytics: PortfolioAnalytics) -> str:
    return "\n\n".join(
        fn(analytics)
        for fn in (
            render_fig1, render_fig2, render_fig3,
            render_fig4, render_fig5, render_fig6,
        )
    )
