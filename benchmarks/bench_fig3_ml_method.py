"""Figure 3 — usage by AI/ML method class.

Paper: "DL/NN methods are much more prevalent than others."
"""

import pytest
from conftest import report

from repro.portfolio import MLMethod, PortfolioAnalytics, generate_portfolio
from repro.portfolio import reference as ref


def test_fig3_usage_by_method(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).usage_by_method()

    usage = benchmark(compute)

    assert usage[MLMethod.DEEP_LEARNING] > 2 * usage[MLMethod.OTHER]
    assert usage[MLMethod.DEEP_LEARNING] > usage[MLMethod.UNDETERMINED]
    for method, share in ref.METHOD_SHARES.items():
        assert usage[method] == pytest.approx(share, abs=0.01)

    report(
        "Fig. 3 — usage by ML method (fraction of AI projects)",
        [
            (m.value, f"{ref.METHOD_SHARES[m]:.0%}", f"{usage[m]:.1%}")
            for m in MLMethod
        ],
        header=("method", "paper", "measured"),
    )
