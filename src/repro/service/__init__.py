"""Facility-as-a-service: a crash-safe, long-running campaign server.

ROADMAP item 1 made concrete. The simulator stack becomes a *service*: a
declarative :class:`~repro.service.spec.CampaignSpec` (one schema shared by
CLI, server, workers and tests) is ingested in bulk, work is handed to
sessions under time-bounded heartbeat-refreshed leases, and every state
transition is written ahead to an fsync'd JSONL journal before it is
acknowledged — so a SIGKILL'd server replays the journal and resumes with
zero lost and zero duplicated jobs, and a SIGKILL'd worker merely lets its
lease expire and requeue (attempt-accounted through the shared
:class:`~repro.resilience.retry.RetryPolicy`).

Modules:

- :mod:`repro.service.spec` — the campaign/job schema;
- :mod:`repro.service.journal` — the write-ahead journal (segments, CRCs,
  torn-tail-tolerant replay);
- :mod:`repro.service.state` — the pure state machine shared by live
  serving and replay;
- :mod:`repro.service.server` — the asyncio unix-socket server
  (backpressure, lease sweeper, graceful drain, telemetry);
- :mod:`repro.service.pubsub` — live event streaming (versioned
  length-prefixed frames, per-topic seqs, bounded subscriber queues);
- :mod:`repro.service.client` — the typed sync client (timeouts, backoff,
  ``subscribe``/``follow`` live event streams);
- :mod:`repro.service.worker` — the lease/heartbeat/complete worker loop;
- :mod:`repro.service.handlers` — deterministic job handlers;
- :mod:`repro.service.chaos` — the seeded fault-injection harness.
"""

from repro.service.chaos import (
    ChaosOutcome,
    ChaosPlan,
    WorkerChaos,
    chaos_campaign,
    expected_results,
    run_chaos_campaign,
    tear_journal_tail,
)
from repro.service.client import ServiceClient
from repro.service.handlers import HANDLERS, run_job
from repro.service.journal import Journal, JournalReplay, read_journal
from repro.service.pubsub import (
    FRAME_VERSION,
    Frame,
    HubSink,
    PubSubHub,
    TOPICS,
    decode_frame,
    encode_frame,
    eos_frame,
    read_frame,
)
from repro.service.server import CampaignServer, serve
from repro.service.spec import CampaignSpec, JobSpec, drug_campaign
from repro.service.state import CampaignState, JobRecord
from repro.service.worker import run_worker

__all__ = [
    "CampaignServer",
    "CampaignSpec",
    "CampaignState",
    "ChaosOutcome",
    "ChaosPlan",
    "FRAME_VERSION",
    "Frame",
    "HANDLERS",
    "HubSink",
    "JobRecord",
    "JobSpec",
    "Journal",
    "JournalReplay",
    "PubSubHub",
    "ServiceClient",
    "TOPICS",
    "WorkerChaos",
    "chaos_campaign",
    "decode_frame",
    "drug_campaign",
    "encode_frame",
    "eos_frame",
    "expected_results",
    "read_frame",
    "read_journal",
    "run_chaos_campaign",
    "run_job",
    "run_worker",
    "serve",
    "tear_journal_tail",
]
