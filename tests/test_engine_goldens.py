"""Seed-matrix golden traces: 3 seeds x both engine implementations.

Each golden is the byte-exact Chrome-trace export of one seeded reference
workload (timers, re-arming timers, sleeps, a child wait, resource
contention and an interrupt) run on one engine implementation. The files
are committed; the tests regenerate each trace in-process and require the
bytes to match exactly, which pins three properties at once:

- *temporal determinism* — rerunning a seed reproduces its trace;
- *impl equivalence* — the heap and calendar traces for a seed are
  byte-identical to each other (the golden pair is intentionally
  redundant: a regression in either impl breaks exactly one file);
- *schedule stability* — any change to event ordering, tie-breaking or
  telemetry emission shows up as a golden diff in review, not as silent
  drift.

To regenerate after an *intentional* contract change::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_engine_goldens.py
"""

from __future__ import annotations

import os
import pathlib

import numpy as np
import pytest

from repro.sim import Engine, Interrupt, Resource, Timeout, Timer
from repro.telemetry import Telemetry, chrome_trace_json

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
SEEDS = (0, 1, 2)
IMPLS = ("heap", "calendar")


def _golden_path(seed: int, impl: str) -> pathlib.Path:
    return GOLDEN_DIR / f"engine_trace_seed{seed}_{impl}.json"


def build_reference_trace(seed: int, impl: str) -> str:
    """Run the seeded reference workload; return its Chrome-trace JSON.

    All randomness is drawn from the seed *before* the engine runs, so the
    workload is identical no matter which implementation executes it —
    the trace bytes are the observable under test. Delays are quantized to
    0.5s so simultaneous-event batches occur in every seed.
    """
    rng = np.random.default_rng(seed)
    sleep_delays = (np.floor(rng.uniform(0.0, 16.0, size=8) * 2) / 2).tolist()
    timer_delays = (np.floor(rng.uniform(0.0, 8.0, size=4) * 2) / 2).tolist()
    rearms = [int(x) for x in rng.integers(0, 3, size=4)]
    victim_idx = int(rng.integers(0, 4))
    interrupt_at = float(np.floor(rng.uniform(1.0, 6.0) * 2) / 2)

    telemetry = Telemetry()
    eng = Engine(telemetry, impl=impl)
    pool = Resource(eng, capacity=2, name="pool")

    tickers = []
    for j, (delay, n) in enumerate(zip(timer_delays, rearms)):
        remaining = [n]

        def fire(remaining=remaining):
            if remaining[0]:
                remaining[0] -= 1
                return 1.5
            return None

        tickers.append(eng.spawn(Timer(delay, fire), name=f"ticker{j}"))

    def sleeper(i, delay):
        try:
            yield pool.acquire(1)
            yield Timeout(delay)
            pool.release(1)
        except Interrupt:
            return "rolled-back"
        return i

    sleepers = [
        eng.spawn(sleeper(i, d), name=f"sleeper{i}")
        for i, d in enumerate(sleep_delays)
    ]

    def chain():
        value = yield sleepers[0]
        yield Timeout(0.5)
        return ("chained", value)

    eng.spawn(chain(), name="chain")

    def saboteur():
        yield Timeout(interrupt_at)
        sleepers[victim_idx].interrupt("node-failure")
        tickers[victim_idx % len(tickers)].interrupt("node-failure")

    eng.spawn(saboteur(), name="saboteur")
    eng.run()
    return chrome_trace_json(telemetry) + "\n"


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("seed", SEEDS)
def test_regenerating_golden_is_a_noop(seed, impl):
    path = _golden_path(seed, impl)
    regenerated = build_reference_trace(seed, impl)
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        path.write_text(regenerated)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path.name} missing - run with REPRO_REGEN_GOLDENS=1 to create it"
    )
    assert regenerated == path.read_text(), (
        f"{path.name} drifted: the {impl} engine no longer reproduces the "
        f"committed seed-{seed} trace byte-for-byte"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_heap_and_calendar_goldens_identical(seed):
    heap = _golden_path(seed, "heap").read_text()
    calendar = _golden_path(seed, "calendar").read_text()
    assert heap == calendar, (
        f"seed {seed}: committed heap and calendar traces diverged"
    )


def test_goldens_are_nontrivial():
    """Guard against an accidentally-empty workload pinning nothing."""
    import json

    for seed in SEEDS:
        trace = json.loads(_golden_path(seed, "calendar").read_text())
        events = trace["traceEvents"]
        assert len(events) > 30, f"seed {seed}: suspiciously small golden"
        assert any(e.get("ph") == "X" for e in events)
