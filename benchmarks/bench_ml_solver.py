"""Math/cs-algorithm motif benchmark (Ichimura et al., GB 2018).

A neural-network-style learned component accelerating a conjugate-gradient
solver: a deflation basis learned from solution snapshots cuts CG
iterations 2-3x on a heterogeneous Poisson operator while preserving the
exact solution — ML in the solver loop with accuracy guaranteed by the
residual test (the Section VI-A verification requirement).
"""

from conftest import report

from repro.science.solver import solver_study


def test_ml_accelerated_solver(benchmark):
    def run():
        return solver_study(n=20, n_snapshots=100, n_solves=8, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    assert results["deflated"] < 0.6 * results["plain"]
    assert results["deflated"] < results["jacobi"]

    report(
        "ML-enhanced CG (heterogeneous Poisson, 400 unknowns)",
        [
            ("plain CG", f"{results['plain']:.0f} iterations"),
            ("Jacobi-preconditioned", f"{results['jacobi']:.0f} iterations"),
            ("learned deflation", f"{results['deflated']:.0f} iterations"),
            ("learned basis dimension", f"{results['basis_dimension']:.0f}"),
            ("speedup vs plain", f"{results['plain'] / results['deflated']:.1f}x"),
        ],
        header=("solver", "cost"),
    )
