"""Unit constants and conversion helpers.

All quantities inside the library are SI: bytes, seconds, FLOP/s, bytes/s.
These constants make call sites self-documenting (``25 * units.GB`` rather
than ``25e9``) and keep the calibration constants in DESIGN.md auditable.

Decimal (SI) prefixes are used throughout because the paper quotes decimal
figures (e.g. "25 GB/s", "2.5 TB/s"). Binary prefixes are provided separately
for memory capacities where vendors quote powers of two.
"""

from __future__ import annotations

# -- decimal prefixes (rates, bandwidths, FLOPs) ------------------------------
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15
EXA = 1e18

KB = KILO
MB = MEGA
GB = GIGA
TB = TERA
PB = PETA

KFLOPS = KILO
MFLOPS = MEGA
GFLOPS = GIGA
TFLOPS = TERA
PFLOPS = PETA
EFLOPS = EXA

# -- binary prefixes (memory capacities) --------------------------------------
KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

# -- time ----------------------------------------------------------------------
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def format_bytes(n: float) -> str:
    """Render a byte count with an appropriate decimal prefix.

    >>> format_bytes(1.4e9)
    '1.40 GB'
    >>> format_bytes(0)
    '0 B'
    >>> format_bytes(0.25)
    '0.25 B'
    >>> format_bytes(3.2e18)
    '3.20 EB'
    >>> format_bytes(7e22)
    '70.00 ZB'
    >>> format_bytes(-1)
    Traceback (most recent call last):
        ...
    ValueError: expected a non-negative quantity, got -1
    """
    return _format(n, "B")


def format_rate(n: float) -> str:
    """Render a bytes/second rate.

    >>> format_rate(2.5e12)
    '2.50 TB/s'
    >>> format_rate(0)
    '0 B/s'
    >>> format_rate(0.5)
    '0.5 B/s'
    """
    return _format(n, "B/s")


def format_flops(n: float) -> str:
    """Render a FLOP/s rate.

    >>> format_flops(1.13e18)
    '1.13 EFLOP/s'
    >>> format_flops(0)
    '0 FLOP/s'
    """
    return _format(n, "FLOP/s")


def format_time(seconds: float) -> str:
    """Render a duration using the most natural unit.

    >>> format_time(0.008)
    '8.00 ms'
    """
    if seconds == 0:
        return "0 s"
    if seconds < 1e-3:
        return f"{seconds / US:.2f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.2f} ms"
    if seconds < MINUTE:
        return f"{seconds:.2f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.2f} min"
    return f"{seconds / HOUR:.2f} h"


_PREFIXES = [
    (1e24, "Y"),
    (1e21, "Z"),
    (EXA, "E"),
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
]


def _format(n: float, suffix: str) -> str:
    """Shared prefix logic; the edge cases are part of the contract:

    - zero renders without a spurious decimal tail (``'0 B'``);
    - sub-unit values (0 < n < 1) keep their significant digits instead of
      rounding to ``'0.00'``;
    - values beyond the largest prefix (> 1000 YB) fall back to scientific
      notation rather than printing absurd mantissas.
    """
    if n < 0:
        raise ValueError(f"expected a non-negative quantity, got {n!r}")
    if n == 0:
        return f"0 {suffix}"
    if n < 1:
        return f"{n:.3g} {suffix}"
    if n >= 1000 * _PREFIXES[0][0]:
        return f"{n:.2e} {suffix}"
    for scale, prefix in _PREFIXES:
        if n >= scale:
            return f"{n / scale:.2f} {prefix}{suffix}"
    return f"{n:.2f} {suffix}"
