"""Facility-wide fault injection and checkpoint-restart resilience.

Section VI's practical message is that full-machine time-to-solution is
governed by failures, not peak throughput: job-wide MTBF shrinks linearly
with node count, and the burst buffer exists largely to make
checkpoint-restart cheap. This package threads that failure semantics
through every simulation layer:

- :mod:`repro.resilience.faults` — per-node exponential failure models and
  the engine-level :class:`FailureInjector` that interrupts victim
  processes;
- :mod:`repro.resilience.retry` — bounded retries with exponential backoff
  and jitter, shared by the DAG executor and the batch scheduler;
- :mod:`repro.resilience.restart` — event-driven checkpoint-restart
  simulation of a single long job;
- :mod:`repro.resilience.validate` — empirical-vs-analytical validation of
  the Young/Daly optimum in :mod:`repro.storage.checkpoint`;
- :mod:`repro.resilience.report` — the goodput / lost-work / overhead
  accounting (:class:`ResilienceReport`).
"""

from repro.resilience.faults import (
    DEFAULT_NODE_MTBF_SECONDS,
    FailureEvent,
    FailureInjector,
    NodeFailureModel,
)
from repro.resilience.report import ResilienceReport
from repro.resilience.restart import RestartStats, simulate_checkpoint_restart
from repro.resilience.retry import RetryPolicy
from repro.resilience.validate import (
    ValidationResult,
    empirical_overhead,
    validate_young_daly,
)

__all__ = [
    "DEFAULT_NODE_MTBF_SECONDS",
    "FailureEvent",
    "FailureInjector",
    "NodeFailureModel",
    "ResilienceReport",
    "RestartStats",
    "RetryPolicy",
    "ValidationResult",
    "empirical_overhead",
    "simulate_checkpoint_restart",
    "validate_young_daly",
]
