"""Decision-tree and random-forest regressors.

Glaser et al. (GB/2020/COVID, surrogate-model motif) represent a
binding-affinity scoring function with random forests; the drug-design
workflow of Section V-C uses the same pattern. This is a vectorised CART
implementation: variance-reduction splits over feature thresholds, bootstrap
aggregation with feature subsampling, and ensemble-spread uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class _Node:
    """One tree node; leaves carry ``value``, internal nodes a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splitting."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        max_features: int | None = None,
    ):
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ConfigurationError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self._root: _Node | None = None

    def fit(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator | None = None
    ) -> "DecisionTreeRegressor":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError("x and y row counts differ")
        if x.shape[0] == 0:
            raise ConfigurationError("cannot fit on empty data")
        rng = rng or np.random.default_rng()
        self._root = self._grow(x, y, depth=0, rng=rng)
        return self

    def _grow(
        self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        node = _Node(value=float(y.mean()))
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node
        split = self._best_split(x, y, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1, rng)
        node.right = self._grow(x[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float] | None:
        n, d = x.shape
        k = self.max_features or d
        features = rng.choice(d, size=min(k, d), replace=False)
        base_sse = float(((y - y.mean()) ** 2).sum())
        best: tuple[int, float] | None = None
        best_gain = 1e-12
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys = x[order, feature], y[order]
            # candidate thresholds between distinct consecutive values
            cum = np.cumsum(ys)
            cum2 = np.cumsum(ys * ys)
            total, total2 = cum[-1], cum2[-1]
            counts = np.arange(1, n)
            left_sse = cum2[:-1] - cum[:-1] ** 2 / counts
            right_n = n - counts
            right_sum = total - cum[:-1]
            right_sse = (total2 - cum2[:-1]) - right_sum**2 / right_n
            gains = base_sse - (left_sse + right_sse)
            valid = xs[:-1] < xs[1:]  # cannot split between equal values
            gains = np.where(valid, gains, -np.inf)
            i = int(np.argmax(gains))
            if gains[i] > best_gain:
                best_gain = float(gains[i])
                best = (int(feature), float((xs[i] + xs[i + 1]) / 2.0))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ConfigurationError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def depth(self) -> int:
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


class RandomForestRegressor:
    """Bootstrap-aggregated trees with feature subsampling.

    ``predict_with_uncertainty`` returns the ensemble spread, which the
    drug-design workflow uses to decide which compounds to escalate to the
    expensive MD evaluation.
    """

    def __init__(
        self,
        n_trees: int = 32,
        max_depth: int = 8,
        min_samples_split: int = 4,
        max_features: str | int | None = "sqrt",
        seed: int | None = None,
    ):
        if n_trees < 1:
            raise ConfigurationError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.seed = seed
        self.trees: list[DecisionTreeRegressor] = []

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features is None:
            return None
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, d)
        raise ConfigurationError(f"bad max_features: {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError("x and y row counts differ")
        rng = np.random.default_rng(self.seed)
        k = self._resolve_max_features(x.shape[1])
        self.trees = []
        n = x.shape[0]
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=k,
            )
            tree.fit(x[idx], y[idx], rng=rng)
            self.trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        mean, _ = self.predict_with_uncertainty(x)
        return mean

    def predict_with_uncertainty(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(mean, std) across trees per sample."""
        if not self.trees:
            raise ConfigurationError("predict called before fit")
        preds = np.stack([t.predict(x) for t in self.trees])
        return preds.mean(axis=0), preds.std(axis=0)
