"""Tests for the out-of-core telemetry plane: the sharded JSONL sink, the
deterministic shard stitcher (byte-identity at every shard size, including
one-record shards), and the bounded-memory incremental aggregators."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_SHARD_MAX_BYTES,
    ShardAggregator,
    ShardedJsonlSink,
    SpanSink,
    Telemetry,
    chrome_trace_json,
    iter_shard_records,
    load_shards,
    shard_paths,
    summary,
    to_jsonl,
)
from repro.telemetry.scenarios import run_scenario, run_scenario_replicas


def _spill_scenario(tmp_path, name="dag", seed=0, shard_max_bytes=4096):
    directory = tmp_path / f"shards-{name}-{shard_max_bytes}"
    sink = ShardedJsonlSink(directory, shard_max_bytes=shard_max_bytes)
    telemetry = run_scenario(name, seed=seed, sink=sink).telemetry
    telemetry.close()
    return directory, sink


class TestShardedJsonlSink:
    def test_satisfies_the_sink_protocol(self, tmp_path):
        assert isinstance(ShardedJsonlSink(tmp_path / "s"), SpanSink)

    def test_spills_and_counts_every_record(self, tmp_path):
        baseline = run_scenario("dag", seed=0).telemetry
        directory, sink = _spill_scenario(tmp_path)
        assert sink.n_spans == len(baseline.spans)
        assert sink.n_instants == len(baseline.instants)
        assert sink.n_samples == len(baseline.samples)
        assert sink.n_shards == len(shard_paths(directory)) > 1

    def test_one_record_per_shard_at_minimum_size(self, tmp_path):
        directory, sink = _spill_scenario(tmp_path, shard_max_bytes=1)
        paths = shard_paths(directory)
        assert len(paths) == sink.n_shards
        for path in paths:
            assert len(path.read_bytes().splitlines()) == 1

    def test_flush_rotates_partial_buffer(self, tmp_path):
        sink = ShardedJsonlSink(tmp_path / "s")
        telemetry = Telemetry(sink=sink)
        with telemetry.span("step", "bench"):
            pass
        assert shard_paths(tmp_path / "s") == []
        telemetry.flush()
        assert len(shard_paths(tmp_path / "s")) == 1

    def test_close_is_idempotent_and_seals(self, tmp_path):
        sink = ShardedJsonlSink(tmp_path / "s")
        telemetry = Telemetry(sink=sink)
        telemetry.instant("boot", "lifecycle")
        telemetry.close()
        telemetry.close()
        with pytest.raises(ConfigurationError, match="closed"):
            telemetry.instant("late", "lifecycle")

    def test_rejects_nonpositive_shard_size(self, tmp_path):
        with pytest.raises(ConfigurationError, match="positive"):
            ShardedJsonlSink(tmp_path / "s", shard_max_bytes=0)

    def test_rejects_directory_with_existing_shards(self, tmp_path):
        _spill_scenario(tmp_path / "run", shard_max_bytes=1 << 20)
        existing = shard_paths(tmp_path / "run" / "shards-dag-1048576")
        assert existing
        with pytest.raises(ConfigurationError, match="fresh directory"):
            ShardedJsonlSink(existing[0].parent)

    def test_sink_backed_handle_refuses_materialized_views(self, tmp_path):
        sink = ShardedJsonlSink(tmp_path / "s")
        telemetry = Telemetry(sink=sink)
        with telemetry.span("step", "bench"):
            pass
        with pytest.raises(ConfigurationError, match="sink-backed"):
            telemetry.finished_spans()
        with pytest.raises(ConfigurationError, match="spilled"):
            chrome_trace_json(telemetry)


class TestShardStitcher:
    @pytest.mark.parametrize("shard_max_bytes", [1, 512, 4096,
                                                 DEFAULT_SHARD_MAX_BYTES])
    @pytest.mark.parametrize("scenario", ["dag", "scheduler"])
    def test_exports_byte_identical_at_any_shard_size(
        self, tmp_path, scenario, shard_max_bytes
    ):
        baseline = run_scenario(scenario, seed=0).telemetry
        directory, _ = _spill_scenario(
            tmp_path, name=scenario, shard_max_bytes=shard_max_bytes
        )
        stitched = load_shards(directory)
        assert chrome_trace_json(stitched) == chrome_trace_json(baseline)
        assert to_jsonl(stitched) == to_jsonl(baseline)
        assert summary(stitched) == summary(baseline)

    def test_replica_merge_through_sink_matches_in_memory(self, tmp_path):
        baseline, _ = run_scenario_replicas("dag", n_replicas=3)
        sink = ShardedJsonlSink(tmp_path / "s", shard_max_bytes=4096)
        merged, _ = run_scenario_replicas("dag", n_replicas=3, sink=sink)
        merged.close()
        stitched = load_shards(tmp_path / "s")
        assert to_jsonl(stitched) == to_jsonl(baseline)
        assert chrome_trace_json(stitched) == chrome_trace_json(baseline)

    def test_restores_span_id_allocator(self, tmp_path):
        directory, sink = _spill_scenario(tmp_path)
        stitched = load_shards(directory)
        assert stitched._next_id == max(s.span_id for s in stitched.spans) + 1
        assert sink.n_spans == len(stitched.spans)

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no telemetry shards"):
            load_shards(tmp_path)
        with pytest.raises(ConfigurationError, match="no telemetry shards"):
            list(iter_shard_records(tmp_path))

    def test_damaged_record_names_file_and_line(self, tmp_path):
        directory, _ = _spill_scenario(tmp_path, shard_max_bytes=1 << 20)
        victim = shard_paths(directory)[0]
        lines = victim.read_bytes().splitlines()
        lines[2] = b"{not json"
        victim.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(ConfigurationError,
                           match=rf"{victim.name}:3"):
            list(iter_shard_records(directory))

    def test_unknown_record_type_raises(self, tmp_path):
        directory, _ = _spill_scenario(tmp_path, shard_max_bytes=1 << 20)
        victim = shard_paths(directory)[0]
        with open(victim, "ab") as fh:
            fh.write(json.dumps({"type": "mystery"}).encode() + b"\n")
        with pytest.raises(ConfigurationError, match="mystery"):
            load_shards(directory)


class TestShardAggregator:
    def test_record_order_rollup_is_float_exact(self, tmp_path):
        baseline = run_scenario("dag", seed=0).telemetry
        directory, _ = _spill_scenario(tmp_path)
        aggregator = ShardAggregator()
        for record in iter_shard_records(directory):
            aggregator.consume(record)

        assert aggregator.n_spans == len(baseline.spans)
        assert aggregator.n_instants == len(baseline.instants)
        assert aggregator.n_samples == len(baseline.samples)
        assert aggregator.n_root_spans == sum(
            1 for s in baseline.spans if s.parent_id is None
        )
        assert aggregator.max_span_id == max(
            s.span_id for s in baseline.spans
        )
        # the record-order float sums land on the materialized timelines'
        # bits exactly (same additions, same order)
        for resource, acc in aggregator.utilization.items():
            timeline = baseline.utilization(resource)
            assert acc.busy_time() == timeline.busy_time()
            assert acc.peak() == timeline.peak()
        assert (aggregator.metrics.as_dict()
                == baseline.metrics.as_dict())

    def test_directory_rollup_identical_at_any_worker_count(self, tmp_path):
        directory, _ = _spill_scenario(tmp_path, shard_max_bytes=1024)
        serial = ShardAggregator().consume_directory(directory, n_jobs=1)
        fanned = ShardAggregator().consume_directory(directory, n_jobs=2)
        assert serial.as_dict() == fanned.as_dict()

    def test_category_stats_match_baseline_counts(self, tmp_path):
        baseline = run_scenario("dag", seed=0).telemetry
        directory, _ = _spill_scenario(tmp_path)
        rollup = ShardAggregator().consume_directory(directory)
        for category, stats in rollup.by_category.items():
            durations = [s.duration for s in baseline.spans
                         if s.category == category]
            assert stats.n == len(durations)
            assert stats.min == min(durations)
            assert stats.max == max(durations)
        assert rollup.summary_lines()[0].startswith("shard rollup:")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no telemetry shards"):
            ShardAggregator().consume_directory(tmp_path)
