"""Event-driven batch-scheduler simulation.

A simple but faithful space-sharing model: the machine is a pool of
``n_nodes``; at every scheduling point (job arrival or completion) the
queue is reordered by the policy and jobs are started in order, with
conservative backfill (a job may jump ahead only if it fits in the
currently idle nodes AND would finish before the queue head could start).

With a :class:`~repro.scheduler.faults.FaultModel`, running jobs die at
exponential times drawn from the job-wide MTBF (per-node MTBF divided by
the job's width); a dead job is requeued — resuming from its last
checkpoint when the model checkpoints, restarting cold otherwise — and the
work between checkpoint and failure is charged to ``lost_node_hours``.
Without a fault model the code path, and every reported number, is
identical to the fault-free simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.scheduler.faults import FaultModel
from repro.scheduler.jobs import Job
from repro.scheduler.policy import Policy, priority_key
from repro.sim.calqueue import make_event_queue
from repro.sim.timerbank import ArrivalBank, DeadlineBank, resolve_timer_bank

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class ScheduleResult:
    """Aggregate outcome of a scheduling run."""

    makespan: float
    utilization: float  # busy node-seconds / (nodes * makespan)
    mean_wait: float
    max_wait: float
    mean_wait_wide: float  # jobs using >= 20 % of the machine
    delivered_node_hours: float
    ai_node_hours: float
    start_times: dict[str, float]
    end_times: dict[str, float]
    n_failures: int = 0
    n_requeues: int = 0
    lost_node_hours: float = 0.0
    abandoned: tuple[str, ...] = ()

    @property
    def ai_share(self) -> float:
        """AI/ML share of delivered node-hours — the 'actual hours used'
        metric Section II-C contrasts with allocation counting."""
        if self.delivered_node_hours == 0:
            return 0.0
        return self.ai_node_hours / self.delivered_node_hours

    @property
    def goodput_fraction(self) -> float:
        """Useful node-hours over useful + lost — 1.0 on a fault-free run."""
        total = self.delivered_node_hours + self.lost_node_hours
        if total == 0:
            return 1.0
        return self.delivered_node_hours / total


class Scheduler:
    """Space-sharing scheduler over a homogeneous node pool."""

    def __init__(self, n_nodes: int, policy: Policy = Policy.CAPABILITY):
        if n_nodes < 1:
            raise ConfigurationError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.policy = policy

    def run(
        self,
        jobs: list[Job],
        faults: FaultModel | None = None,
        telemetry: "Telemetry | None" = None,
        engine_impl: str | None = None,
        timer_bank: bool | None = None,
    ) -> ScheduleResult:
        """Simulate the schedule; optionally record telemetry.

        ``engine_impl`` selects the completion-event queue (``heap`` |
        ``calendar``; default: the ``REPRO_ENGINE_IMPL`` knob). Events are
        ``(end_time, seq)``-ordered under either implementation, so the
        simulated schedule is byte-identical across the two.

        ``timer_bank`` (default: the ``REPRO_TIMER_BANK`` knob, else off)
        swaps the arrival list and the completion queue for the vectorized
        bulk structures in :mod:`repro.sim.timerbank`: arrivals become one
        stable argsort consumed by ``searchsorted`` slices (instead of a
        quadratic ``pending.pop(0)`` scan) and walltime expirations live
        in a :class:`~repro.sim.timerbank.DeadlineBank` whose backfill
        iteration is lazy (instead of a full sort per scheduling point).
        Every event fires in the same ``(time, seq)`` order, so the
        result — and any telemetry trace — is byte-identical to the
        object path; year-scale replays get the asymptotic win.

        With a :class:`~repro.telemetry.Telemetry` handle the run records
        queue-wait spans, per-execution job spans (on per-node tracks when
        the machine is small enough, one track per job otherwise),
        failure/requeue instant events, busy-node and queue-depth counter
        tracks, and the wait/failure metrics. The simulated schedule — and
        every number in the returned :class:`ScheduleResult` — is identical
        with telemetry on or off.
        """
        if not jobs:
            raise ConfigurationError("no jobs to schedule")
        for job in jobs:
            if job.nodes > self.n_nodes:
                raise ConfigurationError(
                    f"{job.job_id} needs {job.nodes} nodes, machine has "
                    f"{self.n_nodes}"
                )

        rng = faults.rng() if faults is not None else None
        remaining = {job.job_id: job.duration for job in jobs}
        requeues = {job.job_id: 0 for job in jobs}
        abandoned: list[str] = []
        n_failures = 0
        lost_node_seconds = 0.0
        occupied_node_seconds = 0.0

        use_bank = resolve_timer_bank(timer_bank)
        if use_bank:
            arrivals: ArrivalBank | None = ArrivalBank.from_jobs(jobs)
            pending: list[Job] = []
        else:
            arrivals = None
            pending = sorted(jobs, key=lambda j: j.submit_time)
        queue: list[Job] = []
        # (end_time, seq, job); fault mode resolves seq -> execution details
        running = DeadlineBank() if use_bank else make_event_queue(engine_impl)
        executions: dict[int, tuple[float, bool]] = {}  # seq -> (run_s, failed)
        seq = 0
        idle = self.n_nodes
        now = 0.0
        starts: dict[str, float] = {}
        ends: dict[str, float] = {}

        # -- telemetry state (inert when telemetry is None) --------------------
        node_tracks = (
            telemetry is not None and self.n_nodes <= telemetry.max_node_tracks
        )
        free_nodes = list(range(self.n_nodes)) if node_tracks else []
        open_runs: dict[int, tuple[list, list[int]]] = {}  # seq -> spans, nodes
        open_waits: dict[str, object] = {}  # job_id -> open wait span

        def snap() -> None:
            """Sample machine occupancy and queue depth counter tracks."""
            assert telemetry is not None
            telemetry.sample(
                "machine.busy_nodes", self.n_nodes - idle, self.n_nodes,
                facility="scheduler", time=now,
            )
            telemetry.sample(
                "scheduler.queue_depth", len(queue),
                facility="scheduler", time=now,
            )

        def enqueued(job: Job, requeue: bool = False) -> None:
            """A job entered the queue: open its wait span."""
            assert telemetry is not None
            open_waits[job.job_id] = telemetry.begin(
                f"wait:{job.job_id}", "queue-wait",
                facility="scheduler", track="queue", time=now,
                nodes=job.nodes, requeue=requeue,
            )

        def launch(job: Job) -> None:
            """Start (or restart) a job; in fault mode, pre-draw its fate."""
            nonlocal idle, seq
            self._start(job, now, starts)
            if faults is None:
                running.push((now + job.duration, seq, job))
            else:
                left = remaining[job.job_id]
                assert rng is not None
                t_fail = float(
                    rng.exponential(faults.node_mtbf_seconds / job.nodes)
                )
                if t_fail < left:
                    executions[seq] = (t_fail, True)
                    running.push((now + t_fail, seq, job))
                else:
                    executions[seq] = (left, False)
                    running.push((now + left, seq, job))
            if telemetry is not None:
                wait_span = open_waits.pop(job.job_id, None)
                if wait_span is not None:
                    ended = telemetry.end(wait_span, time=now)
                    telemetry.metrics.histogram(
                        "scheduler.wait_seconds"
                    ).record(ended.duration)
                if node_tracks:
                    assigned = free_nodes[: job.nodes]
                    del free_nodes[: job.nodes]
                    spans = [
                        telemetry.begin(
                            job.job_id, "job", facility="machine",
                            track=f"node {i}", time=now, nodes=job.nodes,
                        )
                        for i in assigned
                    ]
                else:
                    assigned = []
                    spans = [
                        telemetry.begin(
                            job.job_id, "job", facility="machine",
                            track=job.job_id, time=now, nodes=job.nodes,
                        )
                    ]
                open_runs[seq] = (spans, assigned)
            seq += 1
            idle -= job.nodes
            if telemetry is not None:
                snap()

        def finish_execution(done_seq: int, job: Job, failed: bool) -> None:
            """Close the execution's spans and return its node indices."""
            assert telemetry is not None
            spans, assigned = open_runs.pop(done_seq)
            for span in spans:
                telemetry.end(span, time=now, failed=failed)
            free_nodes.extend(assigned)
            free_nodes.sort()

        def planned_run(job: Job) -> float:
            """Run length the backfill window should assume for ``job``."""
            return job.duration if faults is None else remaining[job.job_id]

        # the queue sort key, specialised per policy so the per-event sort
        # skips the enum dispatch; MUST stay in float-for-float lockstep
        # with policy.priority_key (pinned by a unit test)
        policy = self.policy
        if policy is Policy.CAPABILITY:
            def queue_key(j: Job):
                return (
                    -(j.nodes + 4.0 * max(0.0, (now - j.submit_time) / 3600.0)),
                    j.submit_time,
                )
        elif policy is Policy.FIFO:
            def queue_key(j: Job):
                return (j.submit_time,)
        else:
            def queue_key(j: Job):
                return priority_key(policy, j, now)

        def try_start() -> None:
            nonlocal idle
            queue.sort(key=queue_key)
            started = True
            while started:
                started = False
                if not queue:
                    return
                head = queue[0]
                if head.nodes <= idle:
                    queue.pop(0)
                    launch(head)
                    started = True
                    continue
                # conservative backfill: when could the head start?
                needed = head.nodes - idle
                freed = 0
                head_start = now
                for end_time, _, job in running.sorted_entries():
                    freed += job.nodes
                    head_start = end_time
                    if freed >= needed:
                        break
                i = 1
                while i < len(queue):
                    candidate = queue[i]
                    if (
                        candidate.nodes <= idle
                        and now + planned_run(candidate) <= head_start
                    ):
                        del queue[i]
                        launch(candidate)
                        started = True
                    else:
                        i += 1

        while pending or arrivals or queue or running:
            # next event: job arrival or completion
            if arrivals is not None:
                peeked = arrivals.peek_time()
                next_arrival = peeked if peeked is not None else float("inf")
            else:
                next_arrival = (
                    pending[0].submit_time if pending else float("inf")
                )
            peeked = running.peek_time()
            next_completion = peeked if peeked is not None else float("inf")
            now = min(next_arrival, next_completion)
            if now == float("inf"):
                raise AssertionError("scheduler deadlock")
            if arrivals is not None:
                arrived = arrivals.pop_until(now)
            else:
                arrived = []
                while pending and pending[0].submit_time <= now:
                    arrived.append(pending.pop(0))
            for job in arrived:
                queue.append(job)
                if telemetry is not None:
                    telemetry.instant(
                        f"submit:{job.job_id}", "scheduler",
                        facility="scheduler", track="queue", time=now,
                        nodes=job.nodes,
                    )
                    enqueued(job)
            if telemetry is not None and queue:
                snap()
            while running:
                peeked = running.peek_time()
                if peeked is None or peeked > now:
                    break
                _, done_seq, job = running.pop()
                idle += job.nodes
                if faults is None:
                    ends[job.job_id] = now
                    if telemetry is not None:
                        finish_execution(done_seq, job, failed=False)
                        snap()
                    continue
                run_seconds, failed = executions.pop(done_seq)
                occupied_node_seconds += run_seconds * job.nodes
                if telemetry is not None:
                    finish_execution(done_seq, job, failed=failed)
                    snap()
                if not failed:
                    remaining[job.job_id] = 0.0
                    ends[job.job_id] = now
                    continue
                n_failures += 1
                committed = min(
                    faults.committed_before(run_seconds),
                    remaining[job.job_id],
                )
                remaining[job.job_id] -= committed
                lost_node_seconds += (run_seconds - committed) * job.nodes
                if telemetry is not None:
                    telemetry.instant(
                        f"failure:{job.job_id}", "fault",
                        facility="machine", track="faults", time=now,
                        nodes=job.nodes,
                        lost_node_seconds=(run_seconds - committed) * job.nodes,
                    )
                    telemetry.metrics.counter("scheduler.failures").inc()
                    telemetry.metrics.counter(
                        "scheduler.lost_node_seconds"
                    ).inc((run_seconds - committed) * job.nodes)
                if requeues[job.job_id] >= faults.max_requeues:
                    abandoned.append(job.job_id)
                    ends[job.job_id] = now
                    if telemetry is not None:
                        telemetry.instant(
                            f"abandon:{job.job_id}", "scheduler",
                            facility="scheduler", track="queue", time=now,
                        )
                else:
                    requeues[job.job_id] += 1
                    queue.append(job)
                    if telemetry is not None:
                        telemetry.instant(
                            f"requeue:{job.job_id}", "scheduler",
                            facility="scheduler", track="queue", time=now,
                            attempt=requeues[job.job_id] + 1,
                        )
                        telemetry.metrics.counter("scheduler.requeues").inc()
                        enqueued(job, requeue=True)
            try_start()

        makespan = max(ends.values())
        waits = [starts[j.job_id] - j.submit_time for j in jobs]
        wide_waits = [
            starts[j.job_id] - j.submit_time
            for j in jobs
            if j.nodes >= 0.2 * self.n_nodes
        ]
        if faults is None:
            busy = sum(j.node_seconds for j in jobs)
            ai_seconds = sum(j.node_seconds for j in jobs if j.uses_ai)
            utilization = busy / (self.n_nodes * makespan)
        else:
            # delivered = useful work committed or completed; occupied adds
            # the wall-clock later rolled back by failures
            busy = sum(
                (j.duration - remaining[j.job_id]) * j.nodes for j in jobs
            )
            ai_seconds = sum(
                (j.duration - remaining[j.job_id]) * j.nodes
                for j in jobs
                if j.uses_ai
            )
            utilization = occupied_node_seconds / (self.n_nodes * makespan)
        result = ScheduleResult(
            makespan=makespan,
            utilization=utilization,
            mean_wait=sum(waits) / len(waits),
            max_wait=max(waits),
            mean_wait_wide=(
                sum(wide_waits) / len(wide_waits) if wide_waits else 0.0
            ),
            delivered_node_hours=busy / 3600.0,
            ai_node_hours=ai_seconds / 3600.0,
            start_times=starts,
            end_times=ends,
            n_failures=n_failures,
            n_requeues=sum(requeues.values()),
            lost_node_hours=lost_node_seconds / 3600.0,
            abandoned=tuple(abandoned),
        )
        if telemetry is not None:
            gauges = telemetry.metrics
            gauges.gauge("scheduler.makespan_seconds").set(result.makespan)
            gauges.gauge("scheduler.utilization").set(result.utilization)
            gauges.gauge(
                "scheduler.goodput_fraction"
            ).set(result.goodput_fraction)
            gauges.gauge(
                "scheduler.lost_node_hours"
            ).set(result.lost_node_hours)
            gauges.counter(
                "scheduler.delivered_node_seconds"
            ).inc(busy)
            # end-of-run is a quiescent point: push partial shards to disk
            telemetry.flush()
        return result

    @staticmethod
    def _start(job: Job, now: float, starts: dict[str, float]) -> None:
        if now < job.submit_time:
            raise AssertionError("job started before submission")
        starts.setdefault(job.job_id, now)


def _schedule_replica(
    n_nodes: int, policy: Policy, jobs: list[Job], faults: FaultModel,
    child_seed: int,
) -> ScheduleResult:
    import dataclasses

    seeded = dataclasses.replace(faults, seed=child_seed)
    return Scheduler(n_nodes, policy).run(list(jobs), faults=seeded)


def schedule_ensemble(
    n_nodes: int,
    jobs: list[Job],
    faults: FaultModel,
    n_replicas: int = 8,
    seed: int = 0,
    n_jobs: int = 1,
    policy: Policy = Policy.CAPABILITY,
) -> list[ScheduleResult]:
    """A Monte-Carlo ensemble of fault-injected schedules over child seeds.

    Replica ``i`` reruns the same workload with the fault model reseeded to
    the ``i``-th ``SeedSequence`` child of ``seed``; seeds are assigned by
    replica index — never by shard layout — so the result list is identical
    for every ``n_jobs``. Use it to put error bars on utilization, goodput
    and lost node-hours instead of quoting a single failure draw.
    """
    from functools import partial

    from repro.exec.replicas import monte_carlo

    return monte_carlo(
        partial(_schedule_replica, n_nodes, policy, list(jobs), faults),
        n_replicas,
        seed=seed,
        n_jobs=n_jobs,
    )
