"""Section V-B — the multiscale biology campaign (Trifan et al.).

Benchmarks the coupled FFEA <-> MD workflow with learned latent spaces and
the cross-facility orchestration, checking: the rare mesoscale event is
detected as a latent outlier and triggers atomistic refinement, and the
orchestrated campaign beats serial execution.
"""

from conftest import report

from repro.workflows.case_biology import MultiscaleWorkflow


def test_workflow_multiscale_coupling(benchmark):
    def run():
        workflow = MultiscaleWorkflow(seed=0)
        return workflow.run(n_windows=6, frames_per_window=8, ae_epochs=250)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.event_detected
    assert result.event_score_ratio > 3.0
    assert result.refinements_triggered == 1
    assert result.consistency_rmse < 1.0

    report(
        "Section V-B — multiscale coupling",
        [
            ("event outlier ratio", ">3x", f"{result.event_score_ratio:.1f}x"),
            ("event detected", "yes", str(result.event_detected)),
            ("refinements triggered", 1, result.refinements_triggered),
            ("consistency RMSE", "<1", f"{result.consistency_rmse:.3f}"),
        ],
        header=("metric", "target", "measured"),
    )


def test_workflow_cross_facility_orchestration(benchmark):
    def run():
        graph = MultiscaleWorkflow.campaign_graph(n_windows=4)
        return graph, graph.execute()

    graph, run_result = benchmark(run)

    assert run_result.makespan < graph.serial_time()

    cs2 = MultiscaleWorkflow.campaign_makespan(n_windows=4, use_cs2=True)
    report(
        "Section V-B — cross-facility campaign (4 windows)",
        [
            ("orchestrated makespan", "-", f"{run_result.makespan / 3600:.2f} h"),
            ("serial execution", "slower", f"{graph.serial_time() / 3600:.2f} h"),
            ("concurrency factor", ">1",
             f"{graph.serial_time() / run_result.makespan:.2f}x"),
            ("CVAE on CS-2 instead", "<= Summit",
             f"{cs2.makespan / 3600:.2f} h"),
        ],
        header=("metric", "expected", "measured"),
    )
