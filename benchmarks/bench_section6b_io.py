"""Section VI-B (I/O considerations).

Paper: "For the standard ResNet50 on ImageNet benchmark, a total of 20 TB/s
is required for ideal scaling. This cannot be achieved on current shared
file systems such as GPFS, the read bandwidth of which is only 2.5 TB/s. On
the other hand, node-local NVMe has aggregate read bandwidth over 27 TB/s."
Plus: staging and per-epoch reshuffle cost on the burst buffer.
"""

import pytest
from _record import record, timed
from conftest import report

from repro.constants import (
    GPFS_AGGREGATE_READ_BANDWIDTH,
    NVME_CAPACITY_BYTES,
    SUMMIT_NODE_COUNT,
)
from repro.core import SummitSimulator
from repro.storage.burst_buffer import SUMMIT_NVME, StagingPlan
from repro.storage.dataset import IMAGENET, ShardingPlan
from repro.storage.filesystem import SUMMIT_GPFS


def test_section6b_read_requirement(benchmark):
    sim = SummitSimulator()

    def compute():
        return sim.io_report("resnet50")

    with timed() as t:
        result = benchmark(compute)

    assert result["required"] == pytest.approx(20e12, rel=0.02)
    assert result["shared_fs"] == pytest.approx(GPFS_AGGREGATE_READ_BANDWIDTH)
    assert result["nvme"] > 27e12  # the paper's "over 27 TB/s"
    assert not result["shared_fs_feasible"]
    assert result["nvme_feasible"]

    record(
        "section6b_read_requirement",
        {
            "required_bandwidth": result["required"],
            "shared_fs_bandwidth": result["shared_fs"],
            "nvme_bandwidth": result["nvme"],
            "shared_fs_feasible": result["shared_fs_feasible"],
            "nvme_feasible": result["nvme_feasible"],
        },
        wall_seconds=t.seconds,
    )
    report(
        "Section VI-B — full-Summit ResNet-50 input-read feasibility",
        [
            ("required aggregate", "20 TB/s", f"{result['required'] / 1e12:.2f} TB/s"),
            ("GPFS read bandwidth", "2.5 TB/s", f"{result['shared_fs'] / 1e12:.2f} TB/s"),
            ("NVMe aggregate", ">27 TB/s", f"{result['nvme'] / 1e12:.2f} TB/s"),
            ("GPFS sufficient?", "no", "no" if not result["shared_fs_feasible"] else "yes"),
            ("NVMe sufficient?", "yes", "yes" if result["nvme_feasible"] else "no"),
        ],
        header=("metric", "paper", "measured"),
    )


def test_section6b_staging_and_shuffle_costs(benchmark):
    """The paper's caveats: NVMe data 'is not persistent between jobs'
    (staging cost) and partitioning 'can be expensive if per-epoch data
    shuffling is enforced'."""
    plan = ShardingPlan(
        IMAGENET,
        n_nodes=SUMMIT_NODE_COUNT,
        nvme_bytes_per_node=NVME_CAPACITY_BYTES,
    )
    staging = StagingPlan(plan, SUMMIT_GPFS, SUMMIT_NVME)

    def compute():
        return staging.staging_time(), staging.epoch_read_time(), staging.reshuffle_time()

    with timed() as t:
        stage_t, epoch_t, shuffle_t = benchmark(compute)

    # staging happens once per job; epoch reads are much cheaper
    assert epoch_t < stage_t
    # enforced global reshuffling through the shared FS costs more than the
    # local epoch read it replaces
    assert shuffle_t > epoch_t

    record(
        "section6b_staging_shuffle",
        {
            "staging_seconds": stage_t,
            "epoch_read_seconds": epoch_t,
            "reshuffle_seconds": shuffle_t,
        },
        wall_seconds=t.seconds,
    )
    report(
        "Section VI-B — burst-buffer lifecycle costs (ImageNet, 4608 nodes)",
        [
            ("stage from GPFS", "once per job", f"{stage_t:.1f} s"),
            ("epoch read (NVMe)", "per epoch", f"{epoch_t:.3f} s"),
            ("global reshuffle", "'expensive'", f"{shuffle_t:.1f} s"),
        ],
        header=("step", "paper", "measured"),
    )
