"""Figure 4 — AI/ML usage by science domain.

Stated shape: Biology, Computer Science and Materials are the top active
users; Engineering, Earth Science and Fusion/Plasma carry notable inactive
(planned/validation) usage; Chemistry is represented only indirectly.
"""

from conftest import report

from repro.portfolio import (
    AdoptionStatus,
    Domain,
    PortfolioAnalytics,
    generate_portfolio,
)
from repro.portfolio import reference as ref


def test_fig4_usage_by_domain(benchmark):
    projects = generate_portfolio()

    def compute():
        return PortfolioAnalytics(projects).usage_by_domain()

    table = benchmark(compute)

    analytics = PortfolioAnalytics(projects)
    assert set(analytics.top_ai_domains(3)) == {
        Domain.BIOLOGY, Domain.COMPUTER_SCIENCE, Domain.MATERIALS
    }
    # notable inactive usage in the grid-heavy domains
    for domain in (Domain.ENGINEERING, Domain.EARTH_SCIENCE, Domain.FUSION_PLASMA):
        assert table[domain][AdoptionStatus.INACTIVE] >= 8
    # Chemistry nearly absent ("represented indirectly")
    assert table[Domain.CHEMISTRY][AdoptionStatus.ACTIVE] <= 5

    rows = []
    for domain in Domain:
        total, active, inactive = ref.DOMAIN_TABLE[domain]
        row = table[domain]
        rows.append((
            domain.value,
            f"{active}/{inactive}/{total}",
            f"{row[AdoptionStatus.ACTIVE]}/{row[AdoptionStatus.INACTIVE]}/"
            f"{sum(row.values())}",
        ))
    report(
        "Fig. 4 — usage by domain (active/inactive/total)",
        rows,
        header=("domain", "paper", "measured"),
    )
