"""Section V-A — the materials workflow (Liu et al.).

Benchmarks the ML-accelerated order-disorder study end to end and checks
its two claims: the surrogate-driven Monte Carlo locates the transition
near the exact value, while displacing almost all expensive first-
principles evaluations.
"""

from conftest import report

from repro.workflows.case_materials import MaterialsWorkflow


def test_workflow_materials(benchmark):
    def run():
        workflow = MaterialsWorkflow(lattice_size=12, seed=0)
        return workflow.run(n_training=32, n_sweeps=60, n_warmup=60)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.tc_relative_error < 0.15
    assert result.ce_terms == (1,)  # BIC finds exactly the nn interaction
    assert result.expensive_calls == 32
    assert result.call_reduction > 10

    report(
        "Section V-A — ML-accelerated alloy statistical mechanics",
        [
            ("transition T_c", f"{result.tc_exact:.3f} (exact)",
             f"{result.tc_estimate:.3f}"),
            ("relative error", "-", f"{result.tc_relative_error:.1%}"),
            ("expensive calls", "training only", result.expensive_calls),
            ("surrogate calls", "-", result.mc_energy_evaluations),
            ("call reduction", ">10x", f"{result.call_reduction:.0f}x"),
            ("BIC-selected terms", "nn pair", str(result.ce_terms)),
        ],
        header=("metric", "target", "measured"),
    )
