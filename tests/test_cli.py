"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["comm", "--model", "alexnet"])


class TestCommands:
    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        assert "Summit" in capsys.readouterr().out

    def test_machine_andes(self, capsys):
        assert main(["machine", "--system", "andes"]) == 0
        assert "Andes" in capsys.readouterr().out

    def test_comm_bert(self, capsys):
        assert main(["comm", "--model", "bert_large"]) == 0
        out = capsys.readouterr().out
        assert "112.00 ms" in out

    def test_io(self, capsys):
        assert main(["io"]) == 0
        out = capsys.readouterr().out
        assert "insufficient" in out and "ok" in out

    def test_scaling_weak(self, capsys):
        assert main(["scaling", "--model", "resnet50", "--nodes", "1,16"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
        assert out.count("\n") >= 4

    def test_scaling_strong(self, capsys):
        assert main([
            "scaling", "--model", "resnet50", "--nodes", "1,2,4",
            "--batch", "512", "--strong",
        ]) == 0
        assert "strong scaling" in capsys.readouterr().out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for key in ("kurth", "yang", "laanait", "khan", "blanchard"):
            assert key in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Fig. 6" in out

    def test_gordon_bell(self, capsys):
        assert main(["gordon-bell"]) == 0
        assert "5 / 3" in capsys.readouterr().out

    def test_gordon_bell_verbose(self, capsys):
        assert main(["gordon-bell", "--verbose"]) == 0
        assert "Kurth" in capsys.readouterr().out
