"""Event tracing for simulations: record (time, category, label, payload)
tuples and compute simple statistics over them."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    time: float
    category: str
    label: str
    payload: Any = None


@dataclass
class Trace:
    """An append-only event log with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, time: float, category: str, label: str, payload: Any = None) -> None:
        self.events.append(TraceEvent(time, category, label, payload))

    def by_category(self, category: str) -> list[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def count(self, category: str) -> int:
        return sum(1 for e in self.events if e.category == category)

    def span(self) -> float:
        """Time between the first and last recorded event."""
        if not self.events:
            return 0.0
        times = [e.time for e in self.events]
        return max(times) - min(times)

    def busy_time(self, category: str) -> float:
        """Sum of numeric payloads for a category (for duration events)."""
        return sum(
            e.payload for e in self.by_category(category)
            if isinstance(e.payload, (int, float))
        )
