"""Table III — Gordon Bell finalist counts, paper vs registry."""

from conftest import report

from repro.apps import gordon_bell_table
from repro.portfolio import reference as ref


def test_table3_gordon_bell_counts(benchmark):
    table = benchmark(gordon_bell_table)

    assert table == ref.GORDON_BELL_TABLE

    rows = []
    for (year, category), (total, ai) in sorted(table.items()):
        paper_total, paper_ai = ref.GORDON_BELL_TABLE[(year, category)]
        rows.append((f"{year} {category}", f"{paper_total}/{paper_ai}",
                     f"{total}/{ai}"))
    report(
        "Table III — Summit Gordon Bell finalists (total/AI-ML)",
        rows,
        header=("year", "paper", "measured"),
    )
