"""Out-of-core telemetry throughput: spans/second and peak RSS vs in-memory.

The claim behind :mod:`repro.telemetry.stream` is that spilling closed
records to size-bounded shards makes trace memory *flat* in trace length
while costing little throughput. Each mode runs in its own subprocess so
``ru_maxrss`` (a process-lifetime high-water mark) measures that mode
alone:

- **in-memory** — the default ``Telemetry`` handle accumulating every span;
- **sharded** — the same span stream spilled through a
  :class:`~repro.telemetry.stream.ShardedJsonlSink` at the default 4 MiB
  shard size.

All scalars land in ``BENCH_telemetry_stream.json``. ``REPRO_SMOKE=1``
shrinks the trace for CI; the sub-linear-RSS assertion (sharded peak RSS
under half the in-memory peak at a million spans) is only enforced on the
full run, where the in-memory trace is large enough to dominate the
interpreter's own footprint.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _record import record
from conftest import report

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

N_SPANS = 20_000 if SMOKE else 1_000_000

#: One synthetic span stream, emitted into either backend. Every tenth
#: span carries a counter sample so shards hold mixed record types.
_CHILD = r"""
import json, resource, sys, time

mode, n_spans, directory = sys.argv[1], int(sys.argv[2]), sys.argv[3]
from repro.telemetry import Telemetry
from repro.telemetry.stream import ShardedJsonlSink, shard_paths

sink = None
if mode == "sharded":
    sink = ShardedJsonlSink(directory)
telemetry = Telemetry(sink=sink)
t0 = time.perf_counter()
for i in range(n_spans):
    span = telemetry.begin("step", "bench", facility="f", time=float(i),
                           attrs={"i": i})
    if i % 10 == 0:
        telemetry.sample("nodes", float(i % 8), 8.0, time=float(i),
                         facility="f")
    telemetry.end(span, time=float(i) + 0.5)
telemetry.metrics.counter("bench.spans").inc(n_spans)
telemetry.close()
seconds = time.perf_counter() - t0
print(json.dumps({
    "seconds": seconds,
    "maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    "n_shards": len(shard_paths(directory)) if mode == "sharded" else 0,
}))
"""


def _run_mode(mode: str, n_spans: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="rbench-stream-") as tmp:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", _CHILD, mode, str(n_spans),
             str(Path(tmp) / "shards")],
            capture_output=True, text=True, env=env, timeout=900,
        )
        assert out.returncode == 0, out.stderr[-2000:]
        return json.loads(out.stdout)


def test_streaming_sink_throughput_and_rss():
    wall0 = time.perf_counter()
    in_memory = _run_mode("in-memory", N_SPANS)
    sharded = _run_mode("sharded", N_SPANS)
    wall = time.perf_counter() - wall0

    mem_rate = N_SPANS / in_memory["seconds"]
    shard_rate = N_SPANS / sharded["seconds"]
    rss_ratio = sharded["maxrss_kb"] / in_memory["maxrss_kb"]

    record("telemetry_stream", {
        "n_spans": N_SPANS,
        "in_memory_spans_per_second": mem_rate,
        "sharded_spans_per_second": shard_rate,
        "in_memory_peak_rss_kb": in_memory["maxrss_kb"],
        "sharded_peak_rss_kb": sharded["maxrss_kb"],
        "peak_rss_ratio": rss_ratio,
        "n_shards": sharded["n_shards"],
        "throughput_ratio": shard_rate / mem_rate,
    }, wall_seconds=wall)

    report(
        f"Telemetry spill — {N_SPANS:,} spans",
        [
            ("in-memory", f"{mem_rate:,.0f} spans/s",
             f"{in_memory['maxrss_kb'] / 1024:.0f} MiB peak"),
            ("sharded", f"{shard_rate:,.0f} spans/s",
             f"{sharded['maxrss_kb'] / 1024:.0f} MiB peak "
             f"({sharded['n_shards']} shards)"),
        ],
        header=("backend", "throughput", "peak RSS"),
    )

    assert sharded["n_shards"] >= 1
    assert shard_rate > 0 and mem_rate > 0
    if not SMOKE:
        # the point of the subsystem: spilling keeps the high-water mark
        # sub-linear in trace length
        assert rss_ratio < 0.5, (
            f"sharded peak RSS {sharded['maxrss_kb']} kB is not sub-linear "
            f"vs in-memory {in_memory['maxrss_kb']} kB"
        )
