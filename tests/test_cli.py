"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["comm", "--model", "alexnet"])


class TestCommands:
    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        assert "Summit" in capsys.readouterr().out

    def test_machine_andes(self, capsys):
        assert main(["machine", "--system", "andes"]) == 0
        assert "Andes" in capsys.readouterr().out

    def test_comm_bert(self, capsys):
        assert main(["comm", "--model", "bert_large"]) == 0
        out = capsys.readouterr().out
        assert "112.00 ms" in out

    def test_io(self, capsys):
        assert main(["io"]) == 0
        out = capsys.readouterr().out
        assert "insufficient" in out and "ok" in out

    def test_scaling_weak(self, capsys):
        assert main(["scaling", "--model", "resnet50", "--nodes", "1,16"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out
        assert out.count("\n") >= 4

    def test_scaling_strong(self, capsys):
        assert main([
            "scaling", "--model", "resnet50", "--nodes", "1,2,4",
            "--batch", "512", "--strong",
        ]) == 0
        assert "strong scaling" in capsys.readouterr().out

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for key in ("kurth", "yang", "laanait", "khan", "blanchard"):
            assert key in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Fig. 6" in out

    def test_gordon_bell(self, capsys):
        assert main(["gordon-bell"]) == 0
        assert "5 / 3" in capsys.readouterr().out

    def test_gordon_bell_verbose(self, capsys):
        assert main(["gordon-bell", "--verbose"]) == 0
        assert "Kurth" in capsys.readouterr().out

    def test_resilience_json(self, capsys):
        assert main([
            "resilience", "--nodes", "64", "--analytic-only", "--json",
        ]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["n_nodes"] == 64
        assert 0.0 < payload["goodput_fraction"] <= 1.0

    def test_sweep_json(self, capsys):
        assert main(["sweep", "--nodes", "64,256", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "app"
        assert [r["nodes"] for r in payload["rows"]] == [64, 256]
        assert all(r["total_seconds"] > 0 for r in payload["rows"])


class TestTelemetryCommand:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry", "--scenario", "nope"])

    def test_dag_scenario_writes_perfetto_trace(self, capsys, tmp_path):
        import json

        out = tmp_path / "run.trace.json"
        assert main([
            "telemetry", "--scenario", "dag", "--out", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "goodput fraction" in text
        assert "match" in text and "MISMATCH" not in text
        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert any(e["ph"] == "X" for e in events)  # >= 1 complete span
        assert any(
            e["ph"] == "i" and e["cat"] == "fault" for e in events
        )
        tracks = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(t.startswith("node ") for t in tracks)

    def test_same_seed_identical_trace_files(self, tmp_path):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "telemetry", "--scenario", "dag", "--seed", "5",
                "--out", str(path),
            ]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_json_mode(self, capsys):
        import json

        assert main(["telemetry", "--scenario", "scheduler", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "scheduler"
        assert payload["n_spans"] > 0
        assert "metrics" in payload and payload["results"]
