"""Tests for the Gordon Bell registry and the extreme-scale app simulations.

The extreme-scale assertions are the Section IV-B reproduction targets: the
simulated sustained FLOP rates and parallel efficiencies must land near the
paper's reported values.
"""

import dataclasses

import pytest

from repro.apps import EXTREME_SCALE_APPS, GORDON_BELL_FINALISTS, gordon_bell_table
from repro.apps.extreme_scale import get_app
from repro.errors import ConfigurationError
from repro.portfolio import reference as ref
from repro.portfolio.taxonomy import Motif
from repro.training.parallelism import DataSource


class TestGordonBellRegistry:
    def test_total_17_finalists(self):
        assert len(GORDON_BELL_FINALISTS) == 17

    def test_table_iii_reproduced_exactly(self):
        assert gordon_bell_table() == ref.GORDON_BELL_TABLE

    def test_ten_ai_finalists(self):
        assert sum(1 for f in GORDON_BELL_FINALISTS if f.uses_ai) == 10

    def test_ai_finalists_have_motifs(self):
        for f in GORDON_BELL_FINALISTS:
            if f.uses_ai:
                assert f.motif is not None
            else:
                assert f.motif is None

    def test_known_scales(self):
        by_name = {f.name: f for f in GORDON_BELL_FINALISTS}
        assert by_name["Kurth et al."].max_nodes == 4560
        assert by_name["Nguyen-Cong et al."].max_nodes == 4650
        assert by_name["Trifan et al."].max_nodes == 256

    def test_known_peaks(self):
        by_name = {f.name: f for f in GORDON_BELL_FINALISTS}
        assert by_name["Kurth et al."].peak_flops == pytest.approx(1.13e18)
        assert by_name["Blanchard et al."].peak_flops == pytest.approx(603e15)

    def test_steering_is_most_common_covid_motif(self):
        covid_ai = [
            f.motif for f in GORDON_BELL_FINALISTS
            if f.category == "covid" and f.uses_ai
        ]
        assert covid_ai.count(Motif.STEERING) == 3


class TestExtremeScaleApps:
    def test_all_five_present(self):
        assert set(EXTREME_SCALE_APPS) == {
            "kurth", "yang", "laanait", "khan", "blanchard"
        }

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            get_app("mlperf")

    @pytest.fixture(scope="class")
    def results(self):
        return {key: app.simulate() for key, app in EXTREME_SCALE_APPS.items()}

    def test_kurth_1_13_exaflops(self, results):
        assert results["kurth"]["measured_flops"] == pytest.approx(1.13e18, rel=0.03)

    def test_kurth_efficiency_90_7(self, results):
        assert results["kurth"]["measured_efficiency"] == pytest.approx(
            0.907, abs=0.02
        )

    def test_yang_over_1_2_exaflops(self, results):
        assert results["yang"]["measured_flops"] > 1.15e18

    def test_yang_efficiency_93(self, results):
        assert results["yang"]["measured_efficiency"] == pytest.approx(0.93, abs=0.02)

    def test_laanait_2_15_exaflops(self, results):
        assert results["laanait"]["measured_flops"] == pytest.approx(
            2.15e18, rel=0.03
        )

    def test_laanait_global_batch_27600(self):
        app = get_app("laanait")
        assert app.job(app.peak_nodes).global_batch() == 27600

    def test_khan_efficiency_80(self, results):
        assert results["khan"]["measured_efficiency"] == pytest.approx(0.80, abs=0.03)

    def test_blanchard_603_petaflops(self, results):
        assert results["blanchard"]["measured_flops"] == pytest.approx(
            603e15, rel=0.03
        )

    def test_blanchard_efficiency_with_io_68(self, results):
        assert results["blanchard"]["measured_efficiency"] == pytest.approx(
            0.68, abs=0.03
        )

    def test_blanchard_efficiency_without_io_83(self):
        app = get_app("blanchard")
        no_io = dataclasses.replace(app, data_source=DataSource.MEMORY)
        result = no_io.simulate()
        assert result["measured_efficiency"] == pytest.approx(0.833, abs=0.03)

    def test_blanchard_global_batch_5_8m(self):
        app = get_app("blanchard")
        assert app.job(app.peak_nodes).global_batch() == pytest.approx(
            5.8e6, rel=0.01
        )

    def test_all_apps_below_machine_peak(self, results):
        for key, result in results.items():
            nodes = EXTREME_SCALE_APPS[key].peak_nodes
            peak = nodes * 6 * 125e12
            assert result["measured_flops"] < peak, key

    def test_io_bound_app_is_blanchard(self, results):
        """Only the GPFS-fed app has exposed I/O; the NVMe/in-memory apps
        do not — the Section VI-B storage-hierarchy argument."""
        io_fractions = {
            key: result["breakdown"].io_fraction for key, result in results.items()
        }
        assert io_fractions["blanchard"] > 0.05
        for key in ("kurth", "yang", "laanait", "khan"):
            assert io_fractions[key] < 0.01, key

    def test_khan_is_communication_dominated(self, results):
        """Khan's small WaveNet has the largest exposed-communication share
        of the five (small compute per step, unoverlapped)."""
        comm = {k: r["breakdown"].comm_fraction for k, r in results.items()}
        assert comm["khan"] == max(comm.values())

    def test_reported_dicts_match_reference(self):
        for key, app in EXTREME_SCALE_APPS.items():
            claims = ref.EXTREME_SCALE_CLAIMS[key]
            assert app.peak_nodes == claims["nodes"]
