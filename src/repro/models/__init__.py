"""Analytic descriptions of the deep-learning models the paper discusses.

Each :class:`~repro.models.base.ModelSpec` carries the quantities the
training simulator needs: parameter count (hence allreduce message size),
training FLOPs per sample, input bytes per sample, and the sustained
fraction of V100 tensor-core peak the implementation achieves on one GPU
(calibrated from the rates reported in Section IV-B).
"""

from repro.models.base import ModelSpec
from repro.models.catalog import (
    CATALOG,
    bert_large,
    cvae,
    deeplabv3plus,
    deepmd,
    fc_densenet,
    get_model,
    pi_gan,
    pointnet_aae,
    resnet50,
    smiles_bert,
    tiramisu,
    wavenet_gw,
)

__all__ = [
    "CATALOG",
    "ModelSpec",
    "bert_large",
    "cvae",
    "deeplabv3plus",
    "deepmd",
    "fc_densenet",
    "get_model",
    "pi_gan",
    "pointnet_aae",
    "resnet50",
    "smiles_bert",
    "tiramisu",
    "wavenet_gw",
]
