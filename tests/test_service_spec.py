"""Tests for the campaign spec schema and the deterministic job handlers."""

import json

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.service import CampaignSpec, JobSpec, drug_campaign, run_job
from repro.service.handlers import HANDLERS


class TestJobSpec:
    def test_round_trip(self):
        job = JobSpec("j1", "quadrature", {"n_samples": 16}, seed=3)
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_empty_id_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("", "quadrature")

    def test_empty_handler_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("j1", "")

    def test_non_json_params_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec("j1", "quadrature", {"bad": object()})

    def test_content_payload_excludes_identity(self):
        a = JobSpec("a", "quadrature", {"n_samples": 4}, seed=1)
        b = JobSpec("b", "quadrature", {"n_samples": 4}, seed=1)
        assert a.content_payload() == b.content_payload()


class TestCampaignSpec:
    def test_json_round_trip(self):
        spec = drug_campaign(5, seed=9)
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = drug_campaign(3)
        path = tmp_path / "campaign.json"
        path.write_text(spec.to_json())
        assert CampaignSpec.from_file(path) == spec

    def test_duplicate_job_ids_rejected(self):
        jobs = (JobSpec("a", "quadrature"), JobSpec("a", "quadrature"))
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="dup", jobs=jobs)

    def test_heartbeat_must_beat_lease(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", lease_timeout_s=1.0,
                         heartbeat_interval_s=2.0)

    def test_max_pending_positive(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(name="x", max_pending=0)

    def test_retry_policy_shared_fields(self):
        spec = CampaignSpec(name="x", max_attempts=7, backoff_base_s=0.5,
                            backoff_max_s=2.0, deadline_s=30.0)
        policy = spec.retry_policy()
        assert policy.max_attempts == 7
        assert policy.backoff_base == 0.5
        assert policy.backoff_max == 2.0
        assert policy.deadline_s == 30.0

    def test_drug_campaign_deterministic(self):
        assert drug_campaign(8, seed=1) == drug_campaign(8, seed=1)
        assert drug_campaign(8, seed=1) != drug_campaign(8, seed=2)


class TestHandlers:
    def test_unknown_handler(self):
        with pytest.raises(ConfigurationError, match="unknown job handler"):
            run_job("nope", {}, 0)

    @pytest.mark.parametrize("handler", ["docking", "quadrature"])
    def test_deterministic(self, handler):
        a = run_job(handler, {}, seed=42)
        b = run_job(handler, {}, seed=42)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_seed_matters(self):
        assert run_job("quadrature", {}, 1) != run_job("quadrature", {}, 2)

    def test_results_json_serialisable(self):
        for handler in ("docking", "quadrature", "cost_point"):
            json.dumps(run_job(handler, {}, seed=0))

    def test_flaky_fails_then_succeeds(self):
        with pytest.raises(SimulationError):
            run_job("chaos:flaky", {"fail_attempts": 2, "attempt": 1}, 0)
        with pytest.raises(SimulationError):
            run_job("chaos:flaky", {"fail_attempts": 2, "attempt": 2}, 0)
        result = run_job("chaos:flaky", {"fail_attempts": 2, "attempt": 3}, 0)
        assert result == {"succeeded_on_attempt": 3}

    def test_sleep_reports_duration(self):
        assert run_job("chaos:sleep", {"seconds": 0.01}, 0) == {
            "slept_s": 0.01
        }

    def test_registry_names_are_stable(self):
        assert set(HANDLERS) >= {
            "docking", "cost_point", "quadrature",
            "chaos:sleep", "chaos:flaky",
        }
