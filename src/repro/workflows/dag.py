"""Task graphs executed on the discrete-event engine.

Plays the role Balsam and RAPTOR play in the paper's workflows: declare
tasks with durations, node requirements, facility placement and
dependencies; execute them with correct resource contention; read off the
makespan, per-facility utilisation and the critical path.

Tasks may additionally carry failure semantics (``failure_rate``,
``checkpoint_interval``/``checkpoint_write_time``): the executor then
retries failed attempts under a :class:`~repro.resilience.retry.RetryPolicy`
(releasing the nodes during backoff, as a real requeue does) and resumes
from the last committed checkpoint instead of restarting cold. With every
``failure_rate`` at zero the execution path — and every timestamp — is
identical to the fault-free executor.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.resilience.retry import RetryPolicy
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Resource
from repro.sim.trace import Trace
from repro.workflows.facility import Facility


@dataclass(frozen=True)
class Task:
    """One workflow task.

    ``duration`` is reference-machine seconds (rescaled by the facility's
    speed); ``nodes`` are acquired from the facility for the task's span.

    ``failure_rate`` is the expected number of failures per wall-clock
    second while the task runs (0 = never fails). ``checkpoint_interval``
    (wall-clock seconds on the placed facility, ``None`` = no checkpoints)
    commits progress every interval at a cost of ``checkpoint_write_time``
    seconds per write; a failed attempt then resumes from the last commit.
    """

    name: str
    duration: float
    facility: str
    nodes: int = 1
    deps: tuple[str, ...] = ()
    failure_rate: float = 0.0
    checkpoint_interval: float | None = None
    checkpoint_write_time: float = 0.0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError(f"{self.name}: negative duration")
        if self.nodes < 1:
            raise ConfigurationError(f"{self.name}: need at least one node")
        if self.failure_rate < 0:
            raise ConfigurationError(f"{self.name}: negative failure rate")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"{self.name}: checkpoint interval must be positive"
            )
        if self.checkpoint_write_time < 0:
            raise ConfigurationError(
                f"{self.name}: negative checkpoint write time"
            )


@dataclass
class WorkflowRun:
    """Results of executing a task graph.

    The resilience fields stay at their zero defaults when no task carries a
    ``failure_rate`` — an injection-free run is indistinguishable from the
    seed executor's output.
    """

    makespan: float
    start_times: dict[str, float]
    end_times: dict[str, float]
    trace: Trace = field(default_factory=Trace)
    attempts: dict[str, int] = field(default_factory=dict)
    n_failures: int = 0
    lost_seconds: float = 0.0
    checkpoint_seconds: float = 0.0

    @property
    def n_retries(self) -> int:
        """Executions beyond each task's first attempt."""
        return sum(max(0, a - 1) for a in self.attempts.values())

    def critical_path(self, graph: "TaskGraph") -> list[str]:
        """Chain of tasks ending at the latest finisher, following the
        dependency (or resource-wait) chain backwards greedily."""
        if not self.end_times:
            return []
        path = [max(self.end_times, key=self.end_times.get)]
        while True:
            task = graph.tasks[path[-1]]
            if not task.deps:
                break
            # predecessor that finished last gates this task
            gate = max(task.deps, key=lambda d: self.end_times[d])
            path.append(gate)
        return list(reversed(path))

    def facility_busy_node_seconds(self, graph: "TaskGraph") -> dict[str, float]:
        """Node-seconds consumed per facility."""
        out: dict[str, float] = {}
        for name, task in graph.tasks.items():
            span = self.end_times[name] - self.start_times[name]
            out[task.facility] = out.get(task.facility, 0.0) + span * task.nodes
        return out


def _attempt_timeline(
    left: float,
    interval: float | None,
    write_time: float,
    t_fail: float,
) -> tuple[float, float, int, bool]:
    """Timeline of one execution attempt, resolved analytically.

    ``left`` seconds of useful work remain; a failure strikes ``t_fail``
    wall-clock seconds into the attempt (infinity-like values mean never).
    Returns ``(wall, gained, writes, completed)``: the wall-clock the
    attempt held its nodes, the useful seconds newly committed, the number
    of completed checkpoint writes, and whether the task finished. Work
    since the last committed checkpoint — including a checkpoint write cut
    short by the failure — is lost.
    """
    if interval is None:
        # no checkpoints: all-or-nothing
        if t_fail >= left:
            return left, left, 0, True
        return t_fail, 0.0, 0, False
    wall = 0.0
    gained = 0.0
    writes = 0
    while gained < left:
        segment = min(interval, left - gained)
        if t_fail < wall + segment:  # failure mid-compute
            return t_fail, gained, writes, False
        wall += segment
        if gained + segment < left:  # commit requires a checkpoint write
            if t_fail < wall + write_time:  # failure mid-write: segment lost
                return t_fail, gained, writes, False
            wall += write_time
            writes += 1
        gained += segment
    return wall, gained, writes, True


class TaskGraph:
    """A DAG of :class:`Task` objects with validation and execution."""

    def __init__(self, facilities: dict[str, Facility]):
        if not facilities:
            raise ConfigurationError("need at least one facility")
        self.facilities = facilities
        self.tasks: dict[str, Task] = {}

    def add(self, task: Task) -> None:
        if task.name in self.tasks:
            raise ConfigurationError(f"duplicate task {task.name!r}")
        if task.facility not in self.facilities:
            raise ConfigurationError(
                f"{task.name}: unknown facility {task.facility!r}"
            )
        facility = self.facilities[task.facility]
        if task.nodes > facility.nodes:
            raise ConfigurationError(
                f"{task.name}: needs {task.nodes} nodes, {facility.name} has "
                f"{facility.nodes}"
            )
        for dep in task.deps:
            if dep not in self.tasks:
                raise ConfigurationError(
                    f"{task.name}: dependency {dep!r} not yet added "
                    "(add tasks in topological order)"
                )
        self.tasks[task.name] = task

    def add_task(
        self,
        name: str,
        duration: float,
        facility: str,
        nodes: int = 1,
        deps: tuple[str, ...] | list[str] = (),
        failure_rate: float = 0.0,
        checkpoint_interval: float | None = None,
        checkpoint_write_time: float = 0.0,
    ) -> Task:
        """Convenience builder."""
        task = Task(
            name=name, duration=duration, facility=facility,
            nodes=nodes, deps=tuple(deps),
            failure_rate=failure_rate,
            checkpoint_interval=checkpoint_interval,
            checkpoint_write_time=checkpoint_write_time,
        )
        self.add(task)
        return task

    def execute(
        self,
        retry: RetryPolicy | None = None,
        seed: int = 0,
    ) -> WorkflowRun:
        """Run the DAG with resource contention; returns timing results.

        Tasks with a positive ``failure_rate`` are retried under ``retry``
        (defaults to :class:`RetryPolicy` when any task can fail), resuming
        from their last committed checkpoint. ``seed`` drives the per-task
        failure draws; the same seed reproduces the exact same failure
        times, retry counts and makespan.
        """
        if not self.tasks:
            raise ConfigurationError("empty task graph")
        if retry is None:
            retry = RetryPolicy()
        engine = Engine()
        pools = {
            key: Resource(engine, fac.nodes, name=fac.name)
            for key, fac in self.facilities.items()
        }
        run = WorkflowRun(makespan=0.0, start_times={}, end_times={})
        procs: dict[str, object] = {}

        def task_proc(task: Task, index: int):
            for dep in task.deps:
                yield procs[dep]
            duration = self.facilities[task.facility].duration(task.duration)
            if task.failure_rate == 0.0:
                # fault-free fast path: byte-for-byte the seed executor
                yield pools[task.facility].acquire(task.nodes)
                run.start_times[task.name] = engine.now
                run.trace.record(engine.now, "start", task.name, task.nodes)
                yield Timeout(duration)
                pools[task.facility].release(task.nodes)
                run.end_times[task.name] = engine.now
                run.trace.record(engine.now, "end", task.name, duration)
                run.attempts[task.name] = 1
                return
            # resilient path: retry loop with checkpoint-restart
            rng = np.random.default_rng([seed, index])
            committed = 0.0
            attempts = 0
            while True:
                yield pools[task.facility].acquire(task.nodes)
                if attempts == 0:
                    run.start_times[task.name] = engine.now
                    run.trace.record(engine.now, "start", task.name, task.nodes)
                attempts += 1
                t_fail = float(rng.exponential(1.0 / task.failure_rate))
                wall, gained, writes, completed = _attempt_timeline(
                    duration - committed,
                    task.checkpoint_interval,
                    task.checkpoint_write_time,
                    t_fail,
                )
                yield Timeout(wall)
                pools[task.facility].release(task.nodes)
                committed += gained
                run.checkpoint_seconds += writes * task.checkpoint_write_time
                if completed:
                    run.end_times[task.name] = engine.now
                    run.trace.record(engine.now, "end", task.name, duration)
                    run.attempts[task.name] = attempts
                    return
                run.n_failures += 1
                run.lost_seconds += (
                    wall - gained - writes * task.checkpoint_write_time
                )
                run.trace.record(
                    engine.now, "failure", task.name, attempts
                )
                if retry.exhausted(attempts):
                    raise SimulationError(
                        f"task {task.name!r} failed {attempts} times "
                        "(retry budget exhausted)"
                    )
                backoff = retry.delay(attempts, rng)
                run.trace.record(engine.now, "retry", task.name, backoff)
                yield Timeout(backoff)

        for index, (name, task) in enumerate(self.tasks.items()):
            procs[name] = engine.spawn(task_proc(task, index), name=name)
        engine.run()

        if len(run.end_times) != len(self.tasks):
            missing = set(self.tasks) - set(run.end_times)
            raise SimulationError(f"tasks never completed: {sorted(missing)}")
        run.makespan = max(run.end_times.values())
        return run

    def serial_time(self) -> float:
        """Sum of all task durations on their placed facilities — the
        no-concurrency baseline a coordinated workflow is compared against."""
        return sum(
            self.facilities[t.facility].duration(t.duration)
            for t in self.tasks.values()
        )
