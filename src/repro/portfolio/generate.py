"""Calibrated synthetic-portfolio generation.

The OLCF proposal corpus is proprietary, so the survey *records* are
synthesised; everything downstream of the records (classification,
aggregation, figure generation) is the real pipeline. The generator solves
a small allocation problem: produce one :class:`~repro.portfolio.project.Project`
per project-year such that

- every (program, year) cohort has exactly the reference (total, active,
  inactive) counts;
- domain totals and per-domain AI totals match the reference tables;
- the INCITE/ALCC/ECP AI cohort reproduces the Figure 6 motif x domain
  matrix *exactly*;
- ML methods follow the Figure 3 shares.

Two-way consistency (program-year margins x domain margins) is obtained by
iterative proportional fitting (:func:`ipf_fit`) followed by a
margin-preserving integer rounding (:func:`integerize`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.portfolio import reference as ref
from repro.portfolio.project import Project
from repro.portfolio.taxonomy import (
    DOMAIN_SUBDOMAINS,
    AdoptionStatus,
    Domain,
    MLMethod,
    Motif,
    Program,
)

_DOMAINS = tuple(Domain)


def ipf_fit(
    seed_matrix: np.ndarray,
    row_totals: np.ndarray,
    col_totals: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> np.ndarray:
    """Iterative proportional fitting: scale ``seed_matrix`` to match both
    margins. Zero cells stay zero (structural zeros encode narrative
    constraints). Raises if the margins are inconsistent or unreachable.
    """
    seed_matrix = np.asarray(seed_matrix, dtype=float)
    row_totals = np.asarray(row_totals, dtype=float)
    col_totals = np.asarray(col_totals, dtype=float)
    if seed_matrix.shape != (row_totals.size, col_totals.size):
        raise ConfigurationError("seed matrix shape does not match margins")
    if (seed_matrix < 0).any():
        raise ConfigurationError("seed matrix must be non-negative")
    if not np.isclose(row_totals.sum(), col_totals.sum()):
        raise ConfigurationError(
            f"margin sums differ: {row_totals.sum()} vs {col_totals.sum()}"
        )
    m = seed_matrix.copy()
    for _ in range(max_iter):
        row_sums = m.sum(axis=1)
        scale = np.divide(row_totals, row_sums, out=np.zeros_like(row_totals),
                          where=row_sums > 0)
        if ((row_sums == 0) & (row_totals > 0)).any():
            raise ConvergenceError("a required row has an all-zero seed")
        m *= scale[:, None]
        col_sums = m.sum(axis=0)
        scale = np.divide(col_totals, col_sums, out=np.zeros_like(col_totals),
                          where=col_sums > 0)
        if ((col_sums == 0) & (col_totals > 0)).any():
            raise ConvergenceError("a required column has an all-zero seed")
        m *= scale[None, :]
        if (
            np.abs(m.sum(axis=1) - row_totals).max() < tol
            and np.abs(m.sum(axis=0) - col_totals).max() < tol
        ):
            return m
    raise ConvergenceError("IPF did not converge; margins may be infeasible")


def integerize(matrix: np.ndarray) -> np.ndarray:
    """Round a non-negative matrix with integer margins to an integer matrix
    with the *same* margins (transportation-polytope rounding).

    Row by row, cells receive their floor; each row's deficit goes to the
    cells with the largest fractional parts, capped by the remaining column
    capacity. The final row absorbs whatever column capacity remains.
    """
    matrix = np.asarray(matrix, dtype=float)
    row_totals = np.rint(matrix.sum(axis=1)).astype(int)
    col_totals = np.rint(matrix.sum(axis=0)).astype(int)
    if not np.isclose(matrix.sum(axis=1), row_totals).all():
        raise ConfigurationError("row sums must already be integral")
    if not np.isclose(matrix.sum(axis=0), col_totals).all():
        raise ConfigurationError("column sums must already be integral")
    n_rows, n_cols = matrix.shape
    out = np.zeros((n_rows, n_cols), dtype=int)
    col_remaining = col_totals.copy()
    for i in range(n_rows):
        if i == n_rows - 1:
            out[i] = col_remaining
            break
        row = matrix[i]
        base = np.minimum(np.floor(row).astype(int), col_remaining)
        deficit = row_totals[i] - base.sum()
        frac = row - np.floor(row)
        order = np.argsort(-frac, kind="stable")
        for j in order:
            if deficit == 0:
                break
            if col_remaining[j] - base[j] > 0:
                base[j] += 1
                deficit -= 1
        if deficit != 0:
            # fall back: take from any column with remaining capacity
            for j in range(n_cols):
                while deficit > 0 and col_remaining[j] - base[j] > 0:
                    base[j] += 1
                    deficit -= 1
        if deficit != 0:
            raise ConvergenceError("integerization failed: infeasible margins")
        out[i] = base
        col_remaining -= base
    if (out[-1] < 0).any():
        raise ConvergenceError("integerization failed: negative final row")
    return out


def _allocate(
    row_totals: list[int], col_totals: list[int], seed: np.ndarray | None = None
) -> np.ndarray:
    """IPF + integerize with a uniform (or provided) seed."""
    rows = np.asarray(row_totals, dtype=float)
    cols = np.asarray(col_totals, dtype=float)
    if seed is None:
        seed = np.ones((rows.size, cols.size))
    fitted = ipf_fit(seed, rows, cols)
    return integerize(fitted)


def capped_allocate(
    row_totals: list[int], col_totals: list[int], caps: np.ndarray
) -> np.ndarray:
    """Integer allocation matching both margins with per-cell capacities.

    This is a transportation-feasibility problem, solved exactly as a
    max-flow: source -> rows (row totals), rows -> columns (cell caps),
    columns -> sink (column totals). Used to place the `inactive` projects
    inside the combined AI allocation so both the per-program-year and the
    per-domain inactive counts hold simultaneously.
    """
    import networkx as nx

    rows = np.asarray(row_totals, dtype=int)
    cols = np.asarray(col_totals, dtype=int)
    caps = np.asarray(caps, dtype=int)
    if rows.sum() != cols.sum():
        raise ConfigurationError("margin sums differ")
    if caps.shape != (rows.size, cols.size):
        raise ConfigurationError("caps shape mismatch")

    g = nx.DiGraph()
    for i, r in enumerate(rows):
        if r:
            g.add_edge("src", ("row", i), capacity=int(r))
    for j, c in enumerate(cols):
        if c:
            g.add_edge(("col", j), "sink", capacity=int(c))
    for i in range(rows.size):
        for j in range(cols.size):
            if caps[i, j] and rows[i] and cols[j]:
                g.add_edge(("row", i), ("col", j), capacity=int(caps[i, j]))

    total = int(rows.sum())
    if total == 0:
        return np.zeros_like(caps)
    flow_value, flow = nx.maximum_flow(g, "src", "sink")
    if flow_value != total:
        raise ConvergenceError(
            f"capped allocation infeasible: flow {flow_value} < demand {total}"
        )
    out = np.zeros_like(caps)
    for i in range(rows.size):
        for (kind, j), value in flow.get(("row", i), {}).items():
            if kind == "col":
                out[i, j] = value
    return out


def generate_portfolio(seed: int = 2022) -> list[Project]:
    """Build the full 645-record study portfolio (Gordon Bell projects are
    tracked separately in :mod:`repro.apps.registry`)."""
    rng = np.random.default_rng(seed)
    program_years = sorted(ref.PROGRAM_YEAR_TABLE, key=lambda k: (k[0].value, k[1]))

    cohort_a = [
        key for key in program_years if key[0] in ref.FIG56_PROGRAMS
    ]
    cohort_b = [key for key in program_years if key[0] not in ref.FIG56_PROGRAMS]

    # -- AI project domain allocation -------------------------------------------
    ai_counts_a = [
        ref.PROGRAM_YEAR_TABLE[k][1] + ref.PROGRAM_YEAR_TABLE[k][2] for k in cohort_a
    ]
    fig6_cols = [ref.FIG6_DOMAIN_TOTALS[d] for d in _DOMAINS]
    alloc_ai_a = _allocate(ai_counts_a, fig6_cols)

    ai_counts_b = [
        ref.PROGRAM_YEAR_TABLE[k][1] + ref.PROGRAM_YEAR_TABLE[k][2] for k in cohort_b
    ]
    residual_ai = [
        ref.DOMAIN_TABLE[d][1] + ref.DOMAIN_TABLE[d][2] - ref.FIG6_DOMAIN_TOTALS[d]
        for d in _DOMAINS
    ]
    alloc_ai_b = _allocate(ai_counts_b, residual_ai)

    # -- non-AI project domain allocation ------------------------------------------
    none_counts = [
        ref.PROGRAM_YEAR_TABLE[k][0]
        - ref.PROGRAM_YEAR_TABLE[k][1]
        - ref.PROGRAM_YEAR_TABLE[k][2]
        for k in program_years
    ]
    none_domains = [
        ref.DOMAIN_TABLE[d][0] - ref.DOMAIN_TABLE[d][1] - ref.DOMAIN_TABLE[d][2]
        for d in _DOMAINS
    ]
    alloc_none = _allocate(none_counts, none_domains)

    # -- motif queues per domain (cohort A matches Figure 6 exactly) ---------------
    motif_queue_a: dict[Domain, list[Motif]] = {}
    for j, domain in enumerate(_DOMAINS):
        queue: list[Motif] = []
        for motif, row in ref.MOTIF_DOMAIN_MATRIX.items():
            queue.extend([motif] * row[domain])
        motif_queue_a[domain] = queue

    def motif_for_b(domain: Domain, k: int) -> Motif:
        """Cohort-B motifs follow the same per-domain distribution."""
        weights = np.array(
            [ref.MOTIF_DOMAIN_MATRIX[m][domain] for m in ref.MOTIF_COUNTS], dtype=float
        )
        if weights.sum() == 0:
            return Motif.UNDETERMINED
        motifs = list(ref.MOTIF_COUNTS)
        return motifs[int(rng.choice(len(motifs), p=weights / weights.sum()))]

    # -- method cycle (Figure 3 shares, deterministic interleave) --------------------
    total_ai = sum(ai_counts_a) + sum(ai_counts_b)
    method_pool: list[MLMethod] = []
    for method, share in ref.METHOD_SHARES.items():
        method_pool.extend([method] * round(total_ai * share))
    while len(method_pool) < total_ai:
        method_pool.append(MLMethod.DEEP_LEARNING)
    rng.shuffle(method_pool)
    method_iter = iter(method_pool)

    # -- allocation hours: capability programs get bigger grants ----------------------
    hour_scale = {
        Program.INCITE: 600_000.0,
        Program.ALCC: 400_000.0,
        Program.DD: 50_000.0,
        Program.COVID: 80_000.0,
        Program.ECP: 150_000.0,
    }

    projects: list[Project] = []
    counter = 0
    sub_cursor: dict[Domain, int] = {d: 0 for d in _DOMAINS}

    def next_subdomain(domain: Domain) -> str:
        subs = DOMAIN_SUBDOMAINS[domain]
        value = subs[sub_cursor[domain] % len(subs)]
        sub_cursor[domain] += 1
        return value

    def emit(
        key: tuple[Program, int],
        domain: Domain,
        status: AdoptionStatus,
        motif: Motif | None,
    ) -> None:
        nonlocal counter
        program, year = key
        counter += 1
        method = next(method_iter) if status is not AdoptionStatus.NONE else None
        projects.append(
            Project(
                project_id=f"{program.value.lower().replace(' ', '')}-{year}-{counter:04d}",
                program=program,
                year=year,
                domain=domain,
                subdomain=next_subdomain(domain),
                status=status,
                motif=motif,
                method=method,
                allocation_hours=float(
                    hour_scale[program] * rng.lognormal(mean=0.0, sigma=0.6)
                ),
            )
        )

    # -- place inactive projects inside the combined AI allocation so that BOTH
    #    the per-program-year and the per-domain inactive counts hold -----------------
    combined_alloc = np.zeros((len(program_years), len(_DOMAINS)), dtype=int)
    for i, key in enumerate(program_years):
        if key in cohort_a:
            combined_alloc[i] = alloc_ai_a[cohort_a.index(key)]
        else:
            combined_alloc[i] = alloc_ai_b[cohort_b.index(key)]
    inactive_rows = [ref.PROGRAM_YEAR_TABLE[k][2] for k in program_years]
    inactive_cols = [ref.DOMAIN_TABLE[d][2] for d in _DOMAINS]
    inactive_alloc = capped_allocate(inactive_rows, inactive_cols, combined_alloc)

    # -- emit AI projects ----------------------------------------------------------
    for i, key in enumerate(program_years):
        is_a = key in cohort_a
        for j, domain in enumerate(_DOMAINS):
            n_inactive = inactive_alloc[i, j]
            for k in range(combined_alloc[i, j]):
                status = (
                    AdoptionStatus.INACTIVE
                    if k < n_inactive
                    else AdoptionStatus.ACTIVE
                )
                if is_a:
                    motif = motif_queue_a[domain].pop()
                else:
                    motif = motif_for_b(domain, k)
                emit(key, domain, status, motif)

    # -- emit non-AI projects -----------------------------------------------------------
    for i, key in enumerate(program_years):
        for j, domain in enumerate(_DOMAINS):
            for _ in range(alloc_none[i, j]):
                emit(key, domain, AdoptionStatus.NONE, None)

    leftovers = [d for d, q in motif_queue_a.items() if q]
    if leftovers:
        raise ConvergenceError(f"motif queues not drained for {leftovers}")
    return projects
