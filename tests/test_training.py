"""Tests for the distributed-training simulator."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.machine.summit import summit
from repro.models import bert_large, get_model, resnet50
from repro.network.collectives import AllreduceAlgorithm
from repro.training import (
    DataSource,
    ParallelismPlan,
    ScalingStudy,
    TrainingJob,
    step_breakdown,
)
from repro.training.convergence import (
    BERT_CONVERGENCE,
    RESNET50_CONVERGENCE,
    steps_to_target,
    time_to_solution,
)

SYSTEM = summit(include_high_mem=False)


def make_job(model=None, nodes=4, **plan_kwargs):
    plan_kwargs.setdefault("local_batch", 32)
    return TrainingJob(
        model=model or resnet50(),
        system=SYSTEM,
        n_nodes=nodes,
        plan=ParallelismPlan(**plan_kwargs),
    )


class TestParallelismPlan:
    def test_replicas_pure_data_parallel(self):
        plan = ParallelismPlan(local_batch=32)
        assert plan.replicas(24) == 24

    def test_replicas_model_parallel(self):
        plan = ParallelismPlan(local_batch=32, model_shards=6)
        assert plan.replicas(24) == 4

    def test_replicas_indivisible_rejected(self):
        plan = ParallelismPlan(local_batch=32, model_shards=5)
        with pytest.raises(ConfigurationError):
            plan.replicas(24)

    def test_global_batch_includes_accumulation(self):
        plan = ParallelismPlan(local_batch=30, accumulation_steps=8)
        assert plan.global_batch(24192) == 24192 * 30 * 8

    def test_blanchard_batch_is_5_8m(self):
        # 4032 nodes x 6 GPUs x 30 local x 8 accumulation = 5.8M
        plan = ParallelismPlan(local_batch=30, accumulation_steps=8)
        assert plan.global_batch(4032 * 6) == pytest.approx(5.8e6, rel=0.01)

    def test_invalid_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelismPlan(local_batch=0)
        with pytest.raises(ConfigurationError):
            ParallelismPlan(local_batch=1, overlap_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ParallelismPlan(local_batch=1, compute_jitter_cv=-0.1)


class TestStepBreakdown:
    def test_components_sum_to_total(self):
        b = make_job().breakdown()
        assert b.total == pytest.approx(
            b.compute + b.straggler + b.mp_exchange + b.comm_exposed + b.io_exposed
        )

    def test_fractions_sum_to_one(self):
        b = make_job(overlap_fraction=0.0).breakdown()
        assert b.comm_fraction + b.io_fraction + b.compute_fraction == pytest.approx(1.0)

    def test_single_node_has_intra_node_comm_only(self):
        b = make_job(nodes=1, overlap_fraction=0.0).breakdown()
        # 6 GPUs still allreduce over NVLink
        assert b.comm > 0

    def test_comm_grows_with_nodes(self):
        plan = dict(overlap_fraction=0.0,
                    )
        b_small = make_job(nodes=2, **plan).breakdown()
        b_large = make_job(nodes=2048, **plan).breakdown()
        assert b_large.comm > b_small.comm

    def test_overlap_hides_comm(self):
        exposed = make_job(nodes=256, overlap_fraction=0.0).breakdown().comm_exposed
        hidden = make_job(nodes=256, overlap_fraction=1.0).breakdown().comm_exposed
        assert hidden < exposed

    def test_memory_source_has_no_io(self):
        job = make_job().with_data_source(DataSource.MEMORY)
        assert job.breakdown().io == 0.0

    def test_gpfs_io_exceeds_nvme_io_at_scale(self):
        gpfs = make_job(nodes=2048).with_data_source(DataSource.SHARED_FS)
        nvme = make_job(nodes=2048).with_data_source(DataSource.NVME)
        assert gpfs.breakdown().io > nvme.breakdown().io

    def test_straggler_grows_with_scale(self):
        small = make_job(nodes=2, compute_jitter_cv=0.02).breakdown()
        large = make_job(nodes=4096, compute_jitter_cv=0.02).breakdown()
        assert large.straggler > small.straggler

    def test_no_jitter_no_straggler(self):
        assert make_job(nodes=512).breakdown().straggler == 0.0

    def test_accumulation_amortises_comm(self):
        plain = make_job(nodes=512, overlap_fraction=0.0).breakdown()
        accum = make_job(
            nodes=512, overlap_fraction=0.0, accumulation_steps=8
        ).breakdown()
        assert accum.comm_fraction < plain.comm_fraction

    def test_model_parallel_reduces_message(self):
        dp = make_job(model=bert_large(), nodes=64, overlap_fraction=0.0)
        mp = make_job(
            model=bert_large(), nodes=64, overlap_fraction=0.0, model_shards=6
        )
        assert mp.breakdown().comm < dp.breakdown().comm

    def test_model_parallel_adds_exchange(self):
        mp = make_job(model=bert_large(), nodes=64, model_shards=6)
        assert mp.breakdown().mp_exchange > 0

    def test_pinned_ring_slower_for_small_messages(self):
        small_model = dataclasses.replace(resnet50(), parameters=1e5)
        auto = make_job(model=small_model, nodes=2048, overlap_fraction=0.0)
        ring = make_job(
            model=small_model, nodes=2048, overlap_fraction=0.0,
            allreduce_algorithm=AllreduceAlgorithm.RING,
        )
        assert ring.breakdown().comm > auto.breakdown().comm

    def test_cpu_system_rejected(self):
        from repro.machine.summit import andes

        with pytest.raises(ConfigurationError):
            step_breakdown(resnet50(), andes(), 4, ParallelismPlan(local_batch=8))


class TestTrainingJob:
    def test_throughput_equals_samples_over_time(self):
        job = make_job()
        b = job.breakdown()
        assert job.throughput() == pytest.approx(b.samples / b.total)

    def test_sustained_flops_below_peak(self):
        job = make_job(nodes=16)
        peak = 16 * 6 * 125e12
        assert 0 < job.sustained_flops() < peak

    def test_efficiency_vs_self_is_one(self):
        job = make_job()
        assert job.efficiency_vs(job) == pytest.approx(1.0)

    def test_with_nodes_preserves_plan(self):
        job = make_job(nodes=4)
        bigger = job.with_nodes(64)
        assert bigger.plan == job.plan
        assert bigger.n_nodes == 64

    def test_memory_check_rejects_oversized_model(self):
        huge = dataclasses.replace(
            bert_large(), parameters=5e9, activation_bytes_per_sample=1e9
        )
        with pytest.raises(CapacityError):
            make_job(model=huge, local_batch=32)

    def test_model_parallel_fits_oversized_model(self):
        huge = dataclasses.replace(
            bert_large(), parameters=4e9, activation_bytes_per_sample=1e8
        )
        job = TrainingJob(
            model=huge, system=SYSTEM, n_nodes=4,
            plan=ParallelismPlan(local_batch=4, model_shards=6),
        )
        assert job.step_time() > 0

    def test_node_overflow_rejected(self):
        with pytest.raises(CapacityError):
            make_job(nodes=10_000)


class TestScalingStudy:
    def test_weak_scaling_baseline_efficiency_one(self):
        points = ScalingStudy(make_job(nodes=1)).weak_scaling([1, 8, 64])
        assert points[0].efficiency == 1.0

    def test_weak_scaling_efficiency_nonincreasing(self):
        job = make_job(nodes=1, overlap_fraction=0.3, compute_jitter_cv=0.02)
        points = ScalingStudy(job).weak_scaling([1, 8, 64, 512, 4096])
        effs = [p.efficiency for p in points]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_weak_scaling_global_batch_grows(self):
        points = ScalingStudy(make_job(nodes=1)).weak_scaling([1, 4])
        assert points[1].global_batch == 4 * points[0].global_batch

    def test_strong_scaling_fixed_batch(self):
        job = make_job(nodes=1, local_batch=512)
        points = ScalingStudy(job).strong_scaling([1, 2, 4], global_batch=512 * 6)
        assert all(p.global_batch == 512 * 6 for p in points)

    def test_strong_scaling_indivisible_rejected(self):
        job = make_job(nodes=1, local_batch=7)
        with pytest.raises(ConfigurationError):
            ScalingStudy(job).strong_scaling([1, 4], global_batch=100)

    def test_table_renders_all_rows(self):
        points = ScalingStudy(make_job(nodes=1)).weak_scaling([1, 8])
        table = ScalingStudy.table(points, title="t")
        assert table.count("\n") == 3  # title + header + 2 rows

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            ScalingStudy(make_job()).weak_scaling([])


class TestConvergence:
    def test_small_batch_perfect_scaling(self):
        s1 = steps_to_target(RESNET50_CONVERGENCE, 256)
        s2 = steps_to_target(RESNET50_CONVERGENCE, 512)
        assert s2 == pytest.approx(s1 / 2, rel=0.1)

    def test_large_batch_plateaus(self):
        s1 = steps_to_target(RESNET50_CONVERGENCE, 2**20)
        s2 = steps_to_target(RESNET50_CONVERGENCE, 2**21)
        assert s2 > s1 * 0.6  # far from halving

    def test_lamb_extends_critical_batch(self):
        sgd = steps_to_target(BERT_CONVERGENCE, 65536, "sgd")
        lamb = steps_to_target(BERT_CONVERGENCE, 65536, "lamb")
        assert lamb < sgd

    def test_optimizer_order(self):
        batch = 10_000
        results = [
            steps_to_target(RESNET50_CONVERGENCE, batch, opt)
            for opt in ("sgd", "momentum", "lars", "lamb")
        ]
        assert results == sorted(results, reverse=True)

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ConfigurationError):
            steps_to_target(RESNET50_CONVERGENCE, 256, "adagrad")

    def test_time_to_solution_combines_steps_and_step_time(self):
        job = make_job(nodes=16)
        t = time_to_solution(job, RESNET50_CONVERGENCE, "lars")
        steps = steps_to_target(RESNET50_CONVERGENCE, job.global_batch(), "lars")
        assert t == pytest.approx(steps * job.step_time())

    def test_scaling_out_with_lars_beats_sgd_time_to_solution(self):
        """The reason the Section IV-B apps use layer-wise optimizers:
        at large scale, time-to-solution with SGD stops improving."""
        small = make_job(nodes=16, local_batch=64)
        large = make_job(nodes=1024, local_batch=64)
        gain_sgd = time_to_solution(small, RESNET50_CONVERGENCE, "sgd") / \
            time_to_solution(large, RESNET50_CONVERGENCE, "sgd")
        gain_lars = time_to_solution(small, RESNET50_CONVERGENCE, "lars") / \
            time_to_solution(large, RESNET50_CONVERGENCE, "lars")
        assert gain_lars > gain_sgd


@settings(max_examples=25, deadline=None)
@given(
    nodes=st.sampled_from([1, 2, 8, 64, 512]),
    batch=st.sampled_from([8, 32, 128]),
    overlap=st.floats(min_value=0, max_value=1),
)
def test_step_time_always_positive_and_finite(nodes, batch, overlap):
    job = TrainingJob(
        model=resnet50(),
        system=SYSTEM,
        n_nodes=nodes,
        plan=ParallelismPlan(local_batch=batch, overlap_fraction=overlap),
    )
    t = job.step_time()
    assert t > 0
    assert t < 60
