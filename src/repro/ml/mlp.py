"""Multi-layer perceptron with manual backpropagation.

This is the workhorse network of the workflow case studies: surrogate
energy models, docking-score regressors, steering policies. It exposes its
parameters as the flat list the :mod:`repro.optim` optimizers expect, so
LARS/LAMB can be exercised on a real model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.activations import get_activation
from repro.ml.losses import mse


class Dense:
    """A fully connected layer ``y = act(x @ W + b)``.

    He-uniform initialisation for relu, Xavier otherwise.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        if n_in < 1 or n_out < 1:
            raise ConfigurationError("layer dimensions must be >= 1")
        rng = rng or np.random.default_rng()
        self.activation_name = activation
        self._act, self._act_grad = get_activation(activation)
        scale = np.sqrt(2.0 / n_in) if activation == "relu" else np.sqrt(1.0 / n_in)
        self.W = rng.normal(0.0, scale, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        # caches for backward
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.W.shape[0]:
            raise ConfigurationError(
                f"expected input (batch, {self.W.shape[0]}), got {x.shape}"
            )
        self._x = x
        self._z = x @ self.W + self.b
        return self._act(self._z)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate dW/db and return the gradient w.r.t. the input."""
        if self._x is None or self._z is None:
            raise ConfigurationError("backward called before forward")
        dz = grad_out * self._act_grad(self._z)
        self.dW[...] = self._x.T @ dz
        self.db[...] = dz.sum(axis=0)
        return dz @ self.W.T


class MLP:
    """A stack of Dense layers with a simple fit/predict interface.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> x = rng.normal(size=(256, 3))
    >>> y = (x ** 2).sum(axis=1, keepdims=True)
    >>> net = MLP([3, 32, 1], seed=0)
    >>> history = net.fit(x, y, epochs=200, lr=1e-2)
    >>> history[-1] < history[0] * 0.1
    True
    """

    def __init__(
        self,
        layer_sizes: list[int],
        hidden_activation: str = "relu",
        output_activation: str = "identity",
        seed: int | None = None,
    ):
        if len(layer_sizes) < 2:
            raise ConfigurationError("need at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.layers: list[Dense] = []
        for i, (n_in, n_out) in enumerate(zip(layer_sizes, layer_sizes[1:])):
            last = i == len(layer_sizes) - 2
            act = output_activation if last else hidden_activation
            self.layers.append(Dense(n_in, n_out, act, rng))

    # -- parameter plumbing (for repro.optim) ------------------------------------

    @property
    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend((layer.W, layer.b))
        return params

    @property
    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend((layer.dW, layer.db))
        return grads

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters)

    # -- forward / backward --------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=float))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 100,
        lr: float = 1e-2,
        batch_size: int | None = None,
        optimizer=None,
        loss=mse,
        seed: int | None = None,
    ) -> list[float]:
        """Train; returns the per-epoch mean loss history."""
        from repro.optim.sgd import SGD  # local import avoids package cycle

        if epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        if x.shape[0] != y.shape[0]:
            raise ConfigurationError("x and y row counts differ")
        opt = optimizer if optimizer is not None else SGD(lr=lr, momentum=0.9)
        rng = np.random.default_rng(seed)
        n = x.shape[0]
        batch = batch_size or n
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                pred = self.forward(x[idx])
                value, grad = loss(pred, y[idx])
                self.backward(grad)
                opt.step(self.parameters, self.gradients)
                epoch_loss += value
                n_batches += 1
            history.append(epoch_loss / n_batches)
        return history
