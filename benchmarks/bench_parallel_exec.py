"""Data-parallel execution fabric: process-pool sweeps and the result cache.

Times the same cost-model sweep four ways — serial, fanned out over a
4-worker process pool, computed cold through the content-addressed result
cache, and replayed warm from it — and asserts every variant is
**bit-identical** to the serial pass (determinism is the contract; speed
is the payoff). All scalars land in one ``BENCH_parallel_exec.json``.

Speedup assertions are honest about the host: the pool speedup is only
enforced when the machine actually has >= 4 cores, and the warm/cold cache
ratio only on the full-size grid. Set ``REPRO_SMOKE=1`` for a small-grid
CI smoke run that checks parity and records timings without enforcing
either threshold.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _record import record
from conftest import report

from repro.constants import (
    SUMMIT_INJECTION_LATENCY,
    SUMMIT_NODE_COUNT,
)
from repro.cost import DataParallelCrossoverModel, sweep
from repro.exec import ResultCache

SMOKE = bool(os.environ.get("REPRO_SMOKE"))

#: Pool width the acceptance speedup is quoted at.
N_JOBS = 4

#: Required pool speedup on a >= 4-core host on the full grid.
MIN_POOL_SPEEDUP = 2.5

#: Required warm-cache speedup over the cold (compute + store) pass.
MIN_CACHE_SPEEDUP = 10.0


def _grid() -> dict[str, np.ndarray]:
    """Crossover surface axes; the longest axis is what gets sharded."""
    if SMOKE:
        sizes = np.linspace(10e6, 2e9, 24)
        nodes = np.array([2, 64, 1024, SUMMIT_NODE_COUNT])
        bandwidths = np.linspace(12.5e9, 50e9, 3)
    else:
        sizes = np.linspace(10e6, 2e9, 400)
        nodes = np.unique(
            np.geomspace(2, SUMMIT_NODE_COUNT, 40).round().astype(int)
        )
        bandwidths = np.linspace(5e9, 50e9, 8)
    return {
        "message_bytes": sizes,
        "n_ranks": nodes,
        "bandwidth": bandwidths,
    }


def _fixed() -> dict:
    return {
        "latency": SUMMIT_INJECTION_LATENCY,
        "compute_time": 0.05,
        # "best" evaluates every allreduce algorithm per point — enough
        # arithmetic per shard for the pool to have something to win on.
        "allreduce_algorithm": "best",
    }


def _assert_identical(a, b) -> None:
    assert set(a.breakdown) == set(b.breakdown)
    for term in a.breakdown:
        ta, tb = np.asarray(a.term(term)), np.asarray(b.term(term))
        assert ta.dtype == tb.dtype and ta.tobytes() == tb.tobytes(), (
            f"term {term!r} diverged from the serial pass"
        )


def test_parallel_exec_fabric(benchmark, tmp_path):
    model = DataParallelCrossoverModel()
    grid, fixed = _grid(), _fixed()
    n_points = int(np.prod([len(v) for v in grid.values()]))

    serial = benchmark(lambda: sweep(model, grid, **fixed))

    t0 = time.perf_counter()
    serial_again = sweep(model, grid, **fixed)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = sweep(model, grid, n_jobs=N_JOBS, **fixed)
    t_pool = time.perf_counter() - t0

    _assert_identical(serial, serial_again)
    _assert_identical(serial, pooled)

    cache = ResultCache(root=tmp_path / "cache")
    t0 = time.perf_counter()
    cold = sweep(model, grid, cache=cache, **fixed)
    t_cold = time.perf_counter() - t0
    assert (cache.hits, cache.misses) == (0, 1)
    t0 = time.perf_counter()
    warm = sweep(model, grid, cache=cache, **fixed)
    t_warm = time.perf_counter() - t0
    assert (cache.hits, cache.misses) == (1, 1)
    _assert_identical(serial, cold)
    _assert_identical(serial, warm)

    pool_speedup = t_serial / t_pool
    cache_speedup = t_cold / t_warm
    cores = os.cpu_count() or 1
    enforce_pool = not SMOKE and cores >= N_JOBS
    if enforce_pool:
        assert pool_speedup >= MIN_POOL_SPEEDUP, (
            f"{N_JOBS}-worker sweep only {pool_speedup:.2f}x faster than "
            f"serial on {n_points} points / {cores} cores "
            f"(need >= {MIN_POOL_SPEEDUP}x)"
        )
    if not SMOKE:
        assert cache_speedup >= MIN_CACHE_SPEEDUP, (
            f"warm cache only {cache_speedup:.1f}x faster than the cold "
            f"pass (need >= {MIN_CACHE_SPEEDUP}x)"
        )

    report(
        f"Parallel execution fabric ({n_points:,} points, {cores} cores)",
        [
            ("serial pass", "-", f"{t_serial * 1e3:.1f} ms"),
            (f"{N_JOBS}-worker pool", "-", f"{t_pool * 1e3:.1f} ms"),
            ("pool speedup",
             f">= {MIN_POOL_SPEEDUP}x" if enforce_pool else "recorded",
             f"{pool_speedup:.2f}x"),
            ("cache cold", "-", f"{t_cold * 1e3:.1f} ms"),
            ("cache warm", "-", f"{t_warm * 1e3:.2f} ms"),
            ("cache speedup",
             f">= {MIN_CACHE_SPEEDUP}x" if not SMOKE else "recorded",
             f"{cache_speedup:.1f}x"),
            ("bit-identical", "yes", "yes"),
        ],
        header=("metric", "target", "measured"),
    )
    record(
        "parallel_exec",
        {
            "grid_points": n_points,
            "n_jobs": N_JOBS,
            "host_cores": cores,
            "serial_seconds": t_serial,
            "parallel_seconds": t_pool,
            "pool_speedup": pool_speedup,
            "min_pool_speedup": MIN_POOL_SPEEDUP if enforce_pool else None,
            "cache_cold_seconds": t_cold,
            "cache_warm_seconds": t_warm,
            "cache_speedup": cache_speedup,
            "min_cache_speedup": None if SMOKE else MIN_CACHE_SPEEDUP,
        },
        wall_seconds=t_serial + t_pool + t_cold + t_warm,
    )
