"""Shared fixtures for the tier-1 suite.

The conformance fixtures are session-scoped: the expectation registry's
measurement substrate (the calibrated portfolio, the five app simulations,
the Section V workflow campaigns) is computed once and shared by every
parametrized expectation test in ``test_conformance.py``.
"""

import pytest


@pytest.fixture(scope="session")
def verify_context():
    """One shared, lazily-populated measurement cache (seed 0)."""
    from repro.verify import VerifyContext

    return VerifyContext(seed=0)


@pytest.fixture(scope="session")
def conformance_report(verify_context):
    """The full conformance battery, run once per session.

    Reuses ``verify_context``'s cached measurements for the expectation
    layer, so the marginal cost over the registry tests is just the
    differential and invariant batteries.
    """
    from repro.verify import build_registry
    from repro.verify.differential import run_differentials
    from repro.verify.invariants import run_invariants
    from repro.verify.report import ConformanceReport

    registry = build_registry()
    ordered: dict[str, None] = {}
    for e in registry:
        ordered.setdefault(e.section, None)
    return ConformanceReport(
        seed=verify_context.seed,
        sections=tuple(ordered),
        expectations=[e.check(verify_context) for e in registry],
        differentials=run_differentials(seed=verify_context.seed),
        invariants=run_invariants(seed=verify_context.seed),
    )
