#!/usr/bin/env python
"""Capture a Perfetto trace from an instrumented workflow simulation.

Builds a small multi-facility campaign DAG (simulation ensembles feeding
surrogate training, Trifan-style), executes it with failure injection and
checkpoint-restart under a shared ``Telemetry`` handle, then:

1. prints the run summary (spans by category, per-facility utilization,
   metrics registry);
2. cross-checks the telemetry counters against the run's
   ``ResilienceReport`` — the goodput and lost-node-hour totals agree
   exactly, because metrics and report are two views of one accounting;
3. writes ``trace_capture.trace.json`` — open it at
   https://ui.perfetto.dev (or chrome://tracing) to see one process per
   facility, per-node occupancy tracks, fault instants and counter rows.

Run:  python examples/trace_capture.py
"""

from repro.resilience.retry import RetryPolicy
from repro.telemetry import Telemetry, summary, write_chrome_trace
from repro.workflows.dag import TaskGraph
from repro.workflows.facility import Facility

OUT = "trace_capture.trace.json"


def build_graph() -> TaskGraph:
    """An ensemble -> train -> analyze -> refine campaign across 3 sites."""
    graph = TaskGraph({
        "summit": Facility(name="Summit", nodes=8, speed=1.0),
        "thetagpu": Facility(name="ThetaGPU", nodes=4, speed=1.6),
        "cs2": Facility(name="Cerebras CS-2", nodes=1, speed=10.0),
    })
    for i in range(4):
        graph.add_task(
            f"sim{i}", duration=600.0, facility="summit", nodes=2,
            failure_rate=1 / 400.0, checkpoint_interval=120.0,
            checkpoint_write_time=5.0,
        )
    graph.add_task(
        "train", duration=900.0, facility="cs2",
        deps=[f"sim{i}" for i in range(4)],
        failure_rate=1 / 2000.0, checkpoint_interval=300.0,
        checkpoint_write_time=10.0,
    )
    graph.add_task("analyze", duration=300.0, facility="thetagpu", nodes=4,
                   deps=["train"])
    return graph


def main() -> None:
    telemetry = Telemetry()
    run = build_graph().execute(
        retry=RetryPolicy(max_attempts=12), seed=0, telemetry=telemetry
    )

    print(summary(telemetry))
    print()

    # The metrics registry and the ResilienceReport agree exactly: both are
    # derived from the same per-attempt node-second accounting.
    report = run.resilience_report("trace-capture-campaign")
    busy = telemetry.metrics.counter("dag.busy_node_seconds").value
    useful = telemetry.metrics.counter("dag.useful_node_seconds").value
    print(f"goodput from metrics: {useful / busy:.6f}")
    print(f"goodput from report:  {report.goodput_fraction:.6f}")
    assert useful / busy == report.goodput_fraction == run.goodput_fraction

    write_chrome_trace(telemetry, OUT)
    print(f"\nwrote {OUT} — load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
