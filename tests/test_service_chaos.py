"""Chaos-harness determinism: same seed → same fault schedule → same
recovery outcome (ISSUE.md acceptance criterion)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    ChaosPlan,
    WorkerChaos,
    chaos_campaign,
    expected_results,
    run_chaos_campaign,
)
from repro.service.chaos import tear_journal_tail


class TestPlanDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 7, 1234, 2**31])
    def test_same_seed_same_schedule(self, seed):
        a = ChaosPlan.from_seed(seed, n_workers=3, n_jobs=24,
                                server_kills=2)
        b = ChaosPlan.from_seed(seed, n_workers=3, n_jobs=24,
                                server_kills=2)
        assert a == b
        assert a.server_kill_after_done == b.server_kill_after_done
        assert a.workers == b.workers

    def test_different_seeds_differ(self):
        plans = {ChaosPlan.from_seed(s) for s in range(20)}
        assert len(plans) > 1

    def test_kill_thresholds_sorted_and_bounded(self):
        for seed in range(50):
            plan = ChaosPlan.from_seed(seed, n_jobs=24, server_kills=3)
            kills = plan.server_kill_after_done
            assert list(kills) == sorted(kills)
            assert all(1 <= k < 24 for k in kills)
            assert len(plan.tear_tail_after_kill) == len(kills)

    def test_file_round_trip(self, tmp_path):
        plan = ChaosPlan.from_seed(99, n_workers=4, server_kills=2)
        path = plan.to_file(tmp_path / "plan.json")
        assert ChaosPlan.from_file(path) == plan

    def test_worker_index_wraps(self):
        plan = ChaosPlan.from_seed(5, n_workers=2)
        assert plan.worker(0) == plan.worker(2)
        assert plan.worker(1) == plan.worker(3)

    def test_degenerate_plans_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_seed(0, n_workers=0)
        with pytest.raises(ConfigurationError):
            ChaosPlan.from_seed(0, n_jobs=2)


class TestWorkerChaos:
    def test_fires_only_at_planned_counts(self):
        chaos = WorkerChaos(kill_at=(2,), drop_heartbeats_at=(0, 3))
        assert [chaos.kill_before_complete(i) for i in range(4)] == \
            [False, False, True, False]
        assert [chaos.drop_heartbeats(i) for i in range(4)] == \
            [True, False, False, True]


class TestHelpers:
    def test_expected_results_rejects_flaky(self):
        from repro.service import CampaignSpec, JobSpec

        spec = CampaignSpec(name="x", jobs=(
            JobSpec("f", "chaos:flaky", {"fail_attempts": 1}),
        ))
        with pytest.raises(ConfigurationError, match="flaky"):
            expected_results(spec)

    def test_tear_tail_on_empty_journal_is_noop(self, tmp_path):
        assert tear_journal_tail(tmp_path) is None


@pytest.mark.slow
def test_live_follower_survives_server_kill(tmp_path, monkeypatch):
    """The exactly-once streaming claim under real faults: a live
    ``events --follow`` subscriber rides out a server SIGKILL + restart
    and still sees every journal record exactly once, in seq order,
    ending with the drain record.

    Seed 4's plan kills the server once without tearing the journal tail,
    so the frames the follower saw must equal the final WAL byte for
    byte (a torn tail would legitimately rewrite history behind seqs the
    follower already streamed)."""
    from repro.service import read_journal

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    spec = chaos_campaign(10, seed=17, slow_every=3)
    plan = ChaosPlan.from_seed(4, n_workers=2, n_jobs=10, server_kills=1)
    assert not any(plan.tear_tail_after_kill)
    outcome = run_chaos_campaign(spec, plan, tmp_path / "tail",
                                 deadline_s=90.0, tail_events=True)
    assert outcome.server_kills == 1
    assert outcome.status["counts"]["done"] == 10

    frames = outcome.events
    assert frames, "follower saw no frames"
    seqs = [f["seq"] for f in frames]
    assert seqs == list(range(1, len(frames) + 1)), \
        "stream has a gap, duplicate, or disorder across the kill"
    assert frames[-1]["payload"]["type"] == "drain"
    assert all(f["topic"] == "journal" and f["v"] == 1 for f in frames)
    records = read_journal(tmp_path / "tail" / "journal").records
    assert [f["payload"] for f in frames] == records


@pytest.mark.slow
def test_same_seed_same_recovery_outcome(tmp_path, monkeypatch):
    """The full acceptance loop, twice: identical plans, identical faults,
    byte-identical recovered result sets."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    spec = chaos_campaign(10, seed=17, slow_every=3)
    ground_truth = json.dumps(expected_results(spec), sort_keys=True,
                              separators=(",", ":"))
    outcomes = []
    for run in ("a", "b"):
        plan = ChaosPlan.from_seed(11, n_workers=2, n_jobs=10,
                                   server_kills=1)
        outcomes.append(
            run_chaos_campaign(spec, plan, tmp_path / run, deadline_s=90.0)
        )
    first, second = outcomes
    # same fault schedule was injected...
    assert first.server_kills == second.server_kills == 1
    # ...and the recovery outcome is identical, down to the byte
    assert first.results_json == second.results_json == ground_truth
    for outcome in outcomes:
        assert outcome.status["counts"]["done"] == 10
        assert outcome.status["failed_jobs"] == []
