"""Cross-module integration tests: the paper's storylines end to end."""

import dataclasses

import numpy as np
import pytest

from repro.apps.extreme_scale import get_app
from repro.machine.summit import summit
from repro.models import get_model, resnet50
from repro.network.collectives import AllreduceAlgorithm
from repro.optim import LAMB, LARS, SGD
from repro.science.md import LennardJonesMD, lattice_state
from repro.science.potentials import LennardJonesPotential, MLPairPotential
from repro.training import DataSource, ParallelismPlan, ScalingStudy, TrainingJob
from repro.training.convergence import RESNET50_CONVERGENCE, time_to_solution


class TestDataParallelStoryline:
    """Section VI-B end to end: the same model goes from compute-bound to
    communication-bound as the gradient grows, and from GPFS-feasible to
    NVMe-only as the job grows."""

    def test_comm_bound_transition_with_model_size(self):
        """ResNet-50 hides its 100 MB allreduce easily; BERT-large's 1.4 GB
        is 'close to the time of per-batch forward and backward propagation
        and hence hard to hide'; a 3x-BERT model (with the local batch the
        GPU memory still allows) is communication-bound outright."""
        system = summit(include_high_mem=False)

        def comm_fraction(model, local_batch):
            job = TrainingJob(
                model, system, 1024,
                ParallelismPlan(
                    local_batch=local_batch, overlap_fraction=0.0,
                    allreduce_algorithm=AllreduceAlgorithm.RING,
                ),
                data_source=DataSource.MEMORY,
            )
            return job.breakdown().comm_fraction

        from repro.models import bert_large

        giant = dataclasses.replace(
            bert_large(), parameters=2.5 * 350e6,
            activation_bytes_per_sample=48e6,
        )
        small = comm_fraction(resnet50(), 128)
        medium = comm_fraction(bert_large(), 32)
        large = comm_fraction(giant, 8)
        assert small < medium < large
        assert small < 0.2
        assert large > 0.5

    def test_io_wall_appears_with_scale_on_gpfs(self):
        system = summit(include_high_mem=False)
        plan = ParallelismPlan(local_batch=128)
        small = TrainingJob(resnet50(), system, 16, plan, DataSource.SHARED_FS)
        large = TrainingJob(resnet50(), system, 4096, plan, DataSource.SHARED_FS)
        assert small.breakdown().io_fraction < 0.05
        assert large.breakdown().io_fraction > 0.30

    def test_nvme_removes_the_io_wall(self):
        system = summit(include_high_mem=False)
        plan = ParallelismPlan(local_batch=128)
        gpfs = TrainingJob(resnet50(), system, 4096, plan, DataSource.SHARED_FS)
        nvme = TrainingJob(resnet50(), system, 4096, plan, DataSource.NVME)
        assert nvme.step_time() < 0.5 * gpfs.step_time()


class TestTimeToSolutionStoryline:
    """Why every Section IV-B app pairs scale-out with LARS/LAMB."""

    def test_sgd_time_to_solution_saturates_lars_does_not(self):
        system = summit(include_high_mem=False)
        plan = ParallelismPlan(local_batch=64)
        times_sgd, times_lars = [], []
        for nodes in (64, 1024):
            job = TrainingJob(resnet50(), system, nodes, plan)
            times_sgd.append(time_to_solution(job, RESNET50_CONVERGENCE, "sgd"))
            times_lars.append(time_to_solution(job, RESNET50_CONVERGENCE, "lars"))
        sgd_speedup = times_sgd[0] / times_sgd[1]
        lars_speedup = times_lars[0] / times_lars[1]
        assert lars_speedup > 2 * sgd_speedup

    def test_optimizers_train_a_real_network_equally_well(self):
        """The numpy optimizers aren't just cost-model labels: LARS/LAMB
        actually train the real MLP to the same loss as tuned SGD."""
        from repro.ml import MLP

        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 4))
        y = np.column_stack([x.sum(axis=1), (x**2).sum(axis=1)])
        finals = {}
        for name, opt in (
            ("sgd", SGD(lr=0.01, momentum=0.9)),
            ("lars", LARS(lr=1.0, eta=0.02)),
            ("lamb", LAMB(lr=0.02)),
        ):
            net = MLP([4, 32, 2], seed=0)
            history = net.fit(x, y, epochs=150, optimizer=opt, batch_size=64,
                              seed=0)
            finals[name] = history[-1]
        assert max(finals.values()) < 0.5
        assert max(finals.values()) / min(finals.values()) < 50


class TestMLPotentialStoryline:
    """The MD-potentials motif end to end: learn a potential from reference
    data, run MD with it, get the same structure (Jia et al.'s claim at
    laptop scale)."""

    @pytest.fixture(scope="class")
    def potentials(self):
        ml = MLPairPotential(seed=0)
        ml.fit(LennardJonesPotential(), epochs=400, seed=0)
        return LennardJonesPotential(), ml

    def test_learned_potential_reproduces_rdf_peak(self, potentials):
        reference, learned = potentials
        peaks = []
        for potential in (reference, learned):
            md = LennardJonesMD(
                lattice_state(5, density=0.6, temperature=0.5, seed=1),
                potential=potential, dt=0.002,
            )
            rng = np.random.default_rng(0)
            for _ in range(400):
                md.langevin_step(0.7, 1.0, rng)
            r, g = md.radial_distribution(n_bins=40)
            peaks.append(r[g.argmax()])
        assert abs(peaks[0] - peaks[1]) < 0.2

    def test_learned_potential_conserves_energy_in_nve(self, potentials):
        _, learned = potentials
        md = LennardJonesMD(
            lattice_state(4, density=0.4, temperature=0.2, seed=2),
            potential=learned, dt=0.001,
        )
        e0 = md.total_energy()
        md.run(100)
        drift = abs(md.total_energy() - e0) / max(abs(e0), 1.0)
        assert drift < 0.05  # finite-difference forces are approximate


class TestExtremeScaleAblation:
    """Degrading the design choices the Section IV-B papers made must hurt,
    in the direction the papers say it hurts."""

    def test_kurth_without_overlap_loses_efficiency(self):
        app = get_app("kurth")
        base = app.simulate()["measured_efficiency"]
        degraded = dataclasses.replace(
            app, plan=dataclasses.replace(app.plan, overlap_fraction=0.0)
        ).simulate()["measured_efficiency"]
        assert degraded < base

    def test_blanchard_without_accumulation_is_comm_heavier(self):
        app = get_app("blanchard")
        base = app.job(app.peak_nodes).breakdown().comm_fraction
        degraded_plan = dataclasses.replace(app.plan, accumulation_steps=1)
        degraded = dataclasses.replace(app, plan=degraded_plan)
        assert degraded.job(app.peak_nodes).breakdown().comm_fraction > base

    def test_yang_without_model_parallelism_needs_more_memory(self):
        """Yang's model parallelism exists because of GAN batch limits; with
        1-shard replicas and the same local batch the job still fits (the
        PI-GAN is small) but pays more allreduce per replica group."""
        app = get_app("yang")
        dp_plan = dataclasses.replace(app.plan, model_shards=1)
        dp = dataclasses.replace(app, plan=dp_plan)
        mp_comm = app.job(512).breakdown().comm
        dp_comm = dp.job(512).breakdown().comm
        assert dp_comm > mp_comm


class TestFullStudyPipeline:
    def test_survey_and_scaling_compose(self):
        """The two halves of the paper from one import chain."""
        from repro.core import ScalingStudyRunner, UsageSurvey

        survey = UsageSurvey.calibrated()
        active_share = list(survey.analytics.overall_usage().values())[0]
        runner = ScalingStudyRunner(
            "deeplabv3plus",
            ParallelismPlan(local_batch=2, overlap_fraction=0.9,
                            compute_jitter_cv=0.042),
        )
        points = runner.run([1, 64, 4560])
        assert 0.30 < active_share < 0.35
        assert points[-1].sustained_flops == pytest.approx(1.13e18, rel=0.05)
