"""Content-addressed on-disk result cache under ``.repro-cache/``.

Results are keyed by a SHA-256 digest of *what was computed*: a canonical
encoding of the (model/config mapping, grid axes, seed, fixed parameters)
payload plus a fingerprint of the ``repro`` package source. Because the
fingerprint participates in the key, editing any ``.py`` file under the
package silently invalidates every prior entry — stale results can never be
returned after a refactor.

Entries are stored as pickle files, two-level sharded by digest prefix
(``.repro-cache/ab/ab12...pkl``). A hit returns exactly the bytes that were
stored; hit/miss totals land both on the instance and, when a
:class:`~repro.telemetry.metrics.MetricsRegistry` is attached, in
``cache.hits`` / ``cache.misses`` counters. ``enabled=False`` (the CLI's
``--no-cache``) turns every lookup into a recompute without touching disk.

>>> import tempfile
>>> cache = ResultCache(root=tempfile.mkdtemp())
>>> cache.get_or_compute("demo", {"x": 1}, lambda: [1, 2, 3])
[1, 2, 3]
>>> cache.get_or_compute("demo", {"x": 1}, lambda: (_ for _ in ()).throw(
...     RuntimeError("never recomputed on a hit")))
[1, 2, 3]
>>> (cache.hits, cache.misses)
(1, 1)
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ResultCache", "code_fingerprint", "content_key"]

#: Environment override for the cache location (CI points it at a workspace
#: subdirectory so artifacts can be inspected).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro-cache"

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` source file of the ``repro`` package.

    Computed once per process and cached; participates in every cache key
    so any source change invalidates all previously stored results.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def _feed(digest: Any, obj: Any) -> None:
    """Canonically encode ``obj`` into ``digest`` (order-stable, typed)."""
    if obj is None:
        digest.update(b"n;")
    elif isinstance(obj, bool):
        digest.update(f"b:{obj};".encode())
    elif isinstance(obj, int):
        digest.update(f"i:{obj};".encode())
    elif isinstance(obj, float):
        digest.update(f"f:{obj.hex()};".encode())
    elif isinstance(obj, str):
        digest.update(f"s:{len(obj)}:".encode() + obj.encode() + b";")
    elif isinstance(obj, bytes):
        digest.update(f"y:{len(obj)}:".encode() + obj + b";")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        digest.update(
            f"a:{arr.dtype.str}:{arr.shape}:".encode() + arr.tobytes() + b";"
        )
    elif isinstance(obj, np.generic):
        _feed(digest, obj.item())
    elif isinstance(obj, dict):
        digest.update(b"d:")
        for key in sorted(obj, key=repr):
            _feed(digest, key)
            _feed(digest, obj[key])
        digest.update(b";")
    elif isinstance(obj, (list, tuple)):
        digest.update(b"l:")
        for item in obj:
            _feed(digest, item)
        digest.update(b";")
    elif is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        digest.update(f"o:{cls.__module__}.{cls.__qualname__}:".encode())
        _feed(digest, {f.name: getattr(obj, f.name) for f in fields(obj)})
        digest.update(b";")
    elif hasattr(obj, "__dict__") and not callable(obj):
        cls = type(obj)
        digest.update(f"o:{cls.__module__}.{cls.__qualname__}:".encode())
        _feed(digest, vars(obj))
        digest.update(b";")
    else:
        raise ConfigurationError(
            f"cannot build a content key over {type(obj).__name__!r} "
            f"({obj!r}); pass plain data, arrays or dataclasses"
        )


def content_key(kind: str, payload: Any) -> str:
    """The cache key: digest of (kind, canonical payload, code fingerprint).

    >>> a = content_key("sweep", {"x": [1, 2]})
    >>> a == content_key("sweep", {"x": [1, 2]})
    True
    >>> a == content_key("sweep", {"x": [1, 3]})
    False
    """
    digest = hashlib.sha256()
    digest.update(f"k:{kind};".encode())
    _feed(digest, payload)
    digest.update(f"src:{code_fingerprint()};".encode())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(
        self,
        root: str | Path | None = None,
        enabled: bool = True,
        metrics: Any = None,
    ):
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        self.metrics = metrics
        self.hits = 0
        self.misses = 0

    # -- low-level ----------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; unreadable or corrupt entries count as misses."""
        if not self.enabled:
            return False, None
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
            value = pickle.loads(raw)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return False, None
        return True, value

    def store(self, key: str, value: Any) -> Path | None:
        """Persist ``value`` under ``key`` (atomic rename; no-op if disabled)."""
        if not self.enabled:
            return None
        from repro.atomicio import atomic_write_bytes

        return atomic_write_bytes(
            self.path_for(key),
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
        )

    # -- the one entry point callers use ------------------------------------------

    def get_or_compute(
        self, kind: str, payload: Any, compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for (kind, payload), computing on miss."""
        if not self.enabled:
            return compute()
        key = content_key(kind, payload)
        hit, value = self.load(key)
        if hit:
            self.hits += 1
            self._count("cache.hits")
            return value
        self.misses += 1
        self._count("cache.misses")
        value = compute()
        self.store(key, value)
        return value

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"ResultCache({str(self.root)!r}, {state}, "
            f"hits={self.hits}, misses={self.misses})"
        )
