"""Learning-rate schedules for large-batch training.

The linear scaling rule (Goyal et al.) and gradual warmup are the standard
companions of LARS/LAMB in every scale-out result the paper surveys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LinearScalingRule:
    """lr(B) = base_lr * B / base_batch, optionally capped.

    >>> LinearScalingRule(base_lr=0.1, base_batch=256).lr_for_batch(8192)
    3.2
    """

    base_lr: float
    base_batch: int
    max_lr: float | None = None

    def __post_init__(self) -> None:
        if self.base_lr <= 0 or self.base_batch < 1:
            raise ConfigurationError("base_lr and base_batch must be positive")
        if self.max_lr is not None and self.max_lr < self.base_lr:
            raise ConfigurationError("max_lr must be >= base_lr")

    def lr_for_batch(self, batch: int) -> float:
        if batch < 1:
            raise ConfigurationError("batch must be >= 1")
        lr = self.base_lr * batch / self.base_batch
        return min(lr, self.max_lr) if self.max_lr is not None else lr


@dataclass(frozen=True)
class WarmupSchedule:
    """Linear warmup to ``peak_lr`` over ``warmup_steps``, then a choice of
    constant, cosine, or step decay down to ``final_lr`` at ``total_steps``."""

    peak_lr: float
    warmup_steps: int
    total_steps: int
    decay: str = "cosine"  # "cosine" | "constant" | "linear"
    final_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_lr <= 0:
            raise ConfigurationError("peak_lr must be positive")
        if self.warmup_steps < 0 or self.total_steps < 1:
            raise ConfigurationError("step counts must be non-negative/positive")
        if self.warmup_steps >= self.total_steps:
            raise ConfigurationError("warmup must end before total_steps")
        if self.decay not in ("cosine", "constant", "linear"):
            raise ConfigurationError(f"unknown decay {self.decay!r}")
        if self.final_lr < 0 or self.final_lr > self.peak_lr:
            raise ConfigurationError("final_lr must be in [0, peak_lr]")

    def lr(self, step: int) -> float:
        """Learning rate at 0-based ``step``."""
        if step < 0:
            raise ConfigurationError("step must be >= 0")
        if self.warmup_steps and step < self.warmup_steps:
            return self.peak_lr * (step + 1) / self.warmup_steps
        progress = min(1.0, (step - self.warmup_steps) / max(
            1, self.total_steps - self.warmup_steps
        ))
        if self.decay == "constant":
            return self.peak_lr
        if self.decay == "linear":
            return self.peak_lr + (self.final_lr - self.peak_lr) * progress
        # cosine
        return self.final_lr + 0.5 * (self.peak_lr - self.final_lr) * (
            1 + math.cos(math.pi * progress)
        )
