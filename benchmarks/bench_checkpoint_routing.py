"""Checkpointing-tier and routing-policy benchmarks.

Two more quantitative corollaries of the paper's hardware arguments:

- the node-local burst buffer wins checkpointing as well as input reads
  once the job is wide enough (Young-interval overhead comparison);
- the fat tree's *adaptive* routing (Section I calls it out explicitly)
  is what keeps worst-case link load down under shuffle-like traffic.
"""

from conftest import report

from repro.network.pattern import incast_pattern, permutation_pattern, ring_pattern
from repro.network.routing import Router, RoutingPolicy
from repro.network.topology import FatTree, FatTreeSpec
from repro.storage.burst_buffer import SUMMIT_NVME
from repro.storage.checkpoint import CheckpointPlan
from repro.storage.filesystem import SUMMIT_GPFS


def test_checkpoint_tier_comparison(benchmark):
    plan = CheckpointPlan(
        state_bytes_per_node=100e9,  # 100 GB of optimizer+model state
        n_nodes=4096,
        node_mtbf_seconds=5 * 365 * 24 * 3600.0,
    )

    def run():
        return plan.compare_tiers(SUMMIT_NVME, SUMMIT_GPFS)

    tiers = benchmark(run)

    assert tiers["nvme"]["overhead"] < tiers["shared_fs"]["overhead"]

    report(
        "Checkpointing a 4096-node job (Young-optimal intervals)",
        [
            (name,
             f"{t['write_time']:.0f} s",
             f"{t['optimal_interval'] / 3600:.2f} h",
             f"{t['overhead']:.1%}")
            for name, t in tiers.items()
        ],
        header=("tier", "write time", "interval", "overhead"),
    )


def test_routing_policy_across_patterns(benchmark):
    tree = FatTree(FatTreeSpec(hosts=32, radix=8, levels=2))
    patterns = {
        "ring (allreduce)": ring_pattern(32),
        "permutation (shuffle)": permutation_pattern(32, seed=3),
        "incast (IO aggregation)": incast_pattern(32),
    }

    def run():
        out = {}
        for name, flows in patterns.items():
            out[name] = {
                policy.value: Router(tree, policy).route(flows).max_load
                for policy in RoutingPolicy
            }
        return out

    loads = benchmark(run)

    # adaptive never loses, and strictly wins on the shuffle pattern
    for name, row in loads.items():
        assert row["adaptive"] <= row["static"] + 1e-9, name
    assert loads["permutation (shuffle)"]["adaptive"] < loads[
        "permutation (shuffle)"
    ]["static"]

    report(
        "Routing policy vs worst link load (32-host non-blocking fat tree)",
        [
            (name, f"{row['static']:.2f}", f"{row['adaptive']:.2f}")
            for name, row in loads.items()
        ],
        header=("pattern", "static", "adaptive"),
    )
