"""Tests for the ML-enhanced CG solver (math/cs algorithm motif)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.science.solver import (
    ConjugateGradient,
    LearnedDeflation,
    VariableCoefficientPoisson,
    solver_study,
)


@pytest.fixture(scope="module")
def problem():
    return VariableCoefficientPoisson(16, seed=0)


@pytest.fixture(scope="module")
def solver(problem):
    return ConjugateGradient(problem.matrix)


class TestPoissonSystem:
    def test_matrix_is_symmetric(self, problem):
        assert np.allclose(problem.matrix, problem.matrix.T)

    def test_matrix_is_positive_definite(self, problem):
        eigenvalues = np.linalg.eigvalsh(problem.matrix)
        assert eigenvalues.min() > 0

    def test_coefficients_positive(self, problem):
        assert (problem.coefficients > 0).all()

    def test_direct_solve_exact(self, problem):
        b = problem.smooth_rhs()
        x = problem.direct_solve(b)
        assert np.allclose(problem.matrix @ x, b)

    def test_heterogeneous_field(self, problem):
        # high-contrast medium: the coefficient spans at least a decade
        assert problem.coefficients.max() / problem.coefficients.min() > 3

    def test_small_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            VariableCoefficientPoisson(2)


class TestConjugateGradient:
    def test_converges_to_true_solution(self, problem, solver):
        b = problem.smooth_rhs()
        result = solver.solve(b)
        assert result.converged
        assert np.allclose(result.x, problem.direct_solve(b), atol=1e-5)

    def test_residual_below_tolerance(self, problem, solver):
        result = solver.solve(problem.smooth_rhs())
        assert result.relative_residual < solver.tol

    def test_jacobi_reduces_iterations(self, problem, solver):
        b = problem.smooth_rhs()
        plain = solver.solve(b).iterations
        jacobi = solver.solve(b, jacobi=True).iterations
        assert jacobi <= plain

    def test_warm_start_with_exact_solution_is_free(self, problem, solver):
        b = problem.smooth_rhs()
        exact = problem.direct_solve(b)
        result = solver.solve(b, x0=exact)
        assert result.iterations <= 1

    def test_zero_rhs(self, solver):
        result = solver.solve(np.zeros(solver.A.shape[0]))
        assert result.converged
        assert result.iterations == 0

    def test_iteration_cap_reported(self, problem):
        capped = ConjugateGradient(problem.matrix, tol=1e-14, max_iterations=3)
        result = capped.solve(problem.smooth_rhs())
        assert not result.converged
        assert result.iterations == 3

    def test_dimension_mismatch_rejected(self, solver):
        with pytest.raises(ConfigurationError):
            solver.solve(np.zeros(7))

    def test_nonsquare_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            ConjugateGradient(np.zeros((3, 4)))


class TestLearnedDeflation:
    @pytest.fixture(scope="class")
    def fitted(self, problem, solver):
        snapshots = np.array(
            [problem.direct_solve(problem.smooth_rhs()) for _ in range(80)]
        )
        deflation = LearnedDeflation(solver)
        k = deflation.fit(snapshots)
        return deflation, k

    def test_learned_dimension_reasonable(self, fitted):
        _, k = fitted
        assert 1 <= k <= 40

    def test_deflated_solution_is_exact(self, problem, fitted):
        deflation, _ = fitted
        b = problem.smooth_rhs()
        result = deflation.solve(b)
        assert result.converged
        # the ML component must not compromise accuracy (Section VI-A)
        assert np.allclose(result.x, problem.direct_solve(b), atol=1e-5)

    def test_deflation_cuts_iterations(self, problem, solver, fitted):
        deflation, _ = fitted
        plain_iters, deflated_iters = [], []
        for _ in range(5):
            b = problem.smooth_rhs()
            plain_iters.append(solver.solve(b).iterations)
            deflated_iters.append(deflation.solve(b).iterations)
        assert np.mean(deflated_iters) < 0.7 * np.mean(plain_iters)

    def test_solve_before_fit_rejected(self, solver):
        with pytest.raises(ConvergenceError):
            LearnedDeflation(solver).solve(np.zeros(solver.A.shape[0]))

    def test_too_few_snapshots_rejected(self, solver):
        with pytest.raises(ConfigurationError):
            LearnedDeflation(solver).fit(np.zeros((2, solver.A.shape[0])))

    def test_variance_target_controls_dimension(self, problem, solver):
        snapshots = np.array(
            [problem.direct_solve(problem.smooth_rhs()) for _ in range(80)]
        )
        loose = LearnedDeflation(solver, variance_target=0.9)
        tight = LearnedDeflation(solver, variance_target=0.9999)
        assert loose.fit(snapshots) <= tight.fit(snapshots)


class TestSolverStudy:
    def test_ordering_plain_jacobi_deflated(self):
        results = solver_study(n=16, n_snapshots=60, n_solves=5, seed=1)
        assert results["deflated"] < results["jacobi"] <= results["plain"] + 1
        assert results["deflated"] < 0.7 * results["plain"]
